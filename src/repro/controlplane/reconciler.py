"""Anti-entropy reconciliation of the control plane.

A periodic process diffs *intended* state (the platform registries, the
DNS authority's exposure policy, the hypervisors' VM inventories) against
*actual* state (LB-switch VIP/RIP tables, resolver answers, the VIP/RIP
manager's index) and repairs drift through the existing knob paths —
never by inventing new mutation channels.  This is what bounds the damage
of the failure modes journal replay cannot see: half-configured switches
whose move was aborted, registries diverged by lost bookkeeping, stale
DNS answers, running VMs whose wiring evaporated with a crashed manager.

Each pass is pure bookkeeping at one instant of simulated time (the scan
itself is free; repairs go through paths that charge their own latency).
Convergence is measured from the first drifty pass to the next clean one
and reported into the :class:`repro.faults.RecoveryMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.datacenter import MegaDataCenter
    from repro.faults.metrics import RecoveryMonitor


@dataclass
class DriftReport:
    """Outcome of one reconciliation pass."""

    t: float
    #: VIPs registered but present on no switch table.
    vip_missing: int = 0
    #: VIPs whose actual switch differs from the registry.
    vip_misplaced: int = 0
    #: VIPs present on more than one switch table.
    vip_duplicate: int = 0
    #: Registered serving RIPs absent from their VIP's table.
    rip_missing: int = 0
    #: Table RIPs no registry or pending wiring accounts for.
    rip_orphaned: int = 0
    #: VIP/RIP-manager index entries contradicting the tables.
    index_stale: int = 0
    #: Apps whose DNS answer disagreed with what can actually serve.
    dns_stale: int = 0
    #: Serving VMs missing from the RIP registry (wiring lost).
    vm_unregistered: int = 0
    #: Repairs actually performed (<= detected when repair is impossible,
    #: e.g. no healthy switch has slots for a stranded VIP).
    repaired: int = 0
    #: VIPs whose drift went unrepaired for more than ``stuck_after_rounds``
    #: consecutive passes — reported loudly instead of silently skipped.
    stuck_vips: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def detected(self) -> int:
        return (
            self.vip_missing
            + self.vip_misplaced
            + self.vip_duplicate
            + self.rip_missing
            + self.rip_orphaned
            + self.index_stale
            + self.dns_stale
            + self.vm_unregistered
        )

    @property
    def clean(self) -> bool:
        return self.detected == 0


class AntiEntropyReconciler:
    """Periodically diff intended vs. actual state and repair the drift."""

    def __init__(
        self,
        dc: "MegaDataCenter",
        interval_s: float = 30.0,
        monitor: Optional["RecoveryMonitor"] = None,
        repair: bool = True,
        stuck_after_rounds: int = 3,
    ):
        if interval_s <= 0:
            raise ValueError("reconciler interval must be positive")
        if stuck_after_rounds < 1:
            raise ValueError("stuck_after_rounds must be at least 1")
        self.dc = dc
        self.env = dc.env
        self.interval_s = interval_s
        self.monitor = monitor
        #: With repair off the reconciler is a pure drift detector.
        self.repair = repair
        self.passes = 0
        self.drift_detected = 0
        self.drift_repaired = 0
        self.reports: list[DriftReport] = []
        #: Completed drift->clean convergence intervals (seconds).
        self.convergence_times: list[float] = []
        self._dirty_since: Optional[float] = None
        self._busy: set[str] = set()
        #: A VIP detected as drifted but *not* repaired in K consecutive
        #: passes (K > stuck_after_rounds) is stuck — something structural
        #: (no healthy switch, no free slots) keeps the repair from
        #: landing, and retrying quietly forever would hide it.
        self.stuck_after_rounds = stuck_after_rounds
        self._unresolved_streak: dict[str, int] = {}
        self._unresolved: set[str] = set()
        self._proc = self.env.process(self._run())

    def _run(self):
        while True:
            yield self.env.timeout(self.interval_s)
            self.run_pass()

    # ------------------------------------------------------------------ pass
    def run_pass(self) -> DriftReport:
        """One full reconciliation sweep; callable directly from tests."""
        report = DriftReport(t=self.env.now)
        viprip = self.dc.viprip
        if viprip is not None and (viprip.crashed or viprip._recovering):
            # Anti-entropy defers to crash recovery: intended state is not
            # trustworthy until the journal tail has been replayed, and a
            # concurrent "repair" would race the replay's applies.
            # Streaks are left untouched: a skipped pass says nothing
            # about whether a repair would have landed.
            report.notes.append("skipped: manager down, recovery owns the state")
            self.reports.append(report)
            return report
        self._busy = self._busy_vips()
        self._unresolved = set()
        self._reconcile_vip_placement(report)
        self._reconcile_rip_tables(report)
        self._reconcile_orphans(report)
        self._reconcile_manager_index(report)
        self._reconcile_dns(report)
        self._reconcile_vm_inventory(report)

        for vip in self._unresolved:
            self._unresolved_streak[vip] = self._unresolved_streak.get(vip, 0) + 1
        for vip in list(self._unresolved_streak):
            if vip not in self._unresolved:
                del self._unresolved_streak[vip]
        report.stuck_vips = sorted(
            vip
            for vip, streak in self._unresolved_streak.items()
            if streak > self.stuck_after_rounds
        )

        self.passes += 1
        self.reports.append(report)
        self.drift_detected += report.detected
        self.drift_repaired += report.repaired
        monitor = self._monitor()
        if report.stuck_vips:
            report.notes.append(
                f"stuck >{self.stuck_after_rounds} rounds: "
                + ", ".join(report.stuck_vips)
            )
            if monitor is not None:
                monitor.note_stuck_vips(report.stuck_vips)
        if report.detected > 0:
            if self._dirty_since is None:
                self._dirty_since = report.t
        elif self._dirty_since is not None:
            # First clean pass after drift: the plane has converged.
            dt = report.t - self._dirty_since
            self.convergence_times.append(dt)
            self._dirty_since = None
            if monitor is not None:
                monitor.note_convergence(dt)
        if monitor is not None and report.detected > 0:
            monitor.note_drift(report.detected, report.repaired)
        return report

    def _monitor(self) -> Optional["RecoveryMonitor"]:
        """Explicit monitor if one was given, else whatever RecoveryMonitor
        the fault injector attached to the facade."""
        if self.monitor is not None:
            return self.monitor
        return getattr(self.dc, "recovery_monitor", None)

    # ------------------------------------------------------------ VIP checks
    def _busy_vips(self) -> set[str]:
        """VIPs whose placement is legitimately in motion: mid-K2-transfer
        under the global manager, or owned by a queued/in-flight/unsettled
        VIP/RIP-manager operation."""
        busy: set[str] = set()
        gm = self.dc.global_manager
        if gm is not None:
            busy |= gm.vips_in_transfer
        if self.dc.viprip is not None:
            busy |= self.dc.viprip.vips_in_flight()
        return busy

    def _in_transfer(self, vip: str) -> bool:
        return vip in self._busy

    def _reconcile_vip_placement(self, report: DriftReport) -> None:
        dc = self.dc
        for vip in sorted(dc.state.vips):
            if self._in_transfer(vip):
                continue  # legitimately off both switches mid-K2
            info = dc.state.vips[vip]
            actual = sorted(
                name for name, sw in dc.switches.items() if sw.has_vip(vip)
            )
            if actual == [info.switch]:
                continue
            if len(actual) > 1:
                report.vip_duplicate += 1
                if not self.repair:
                    self._unresolved.add(vip)
                    continue
                keep = info.switch if info.switch in actual else actual[0]
                for name in actual:
                    if name != keep:
                        dc.switches[name].remove_vip(vip)
                if keep != info.switch:
                    dc._on_vip_rehomed(vip, keep)
                report.repaired += 1
            elif len(actual) == 1:
                # The data plane is authoritative for *where* the entry
                # lives; realign the registry (and DNS) to it.
                report.vip_misplaced += 1
                if self.repair:
                    dc._on_vip_rehomed(vip, actual[0])
                    report.repaired += 1
                else:
                    self._unresolved.add(vip)
            else:
                # Stranded: on no switch and not in transfer (e.g. an
                # aborted half-configured move).  Recreate the group on a
                # healthy switch; the RIP pass refills it from the
                # registry.
                report.vip_missing += 1
                if not self.repair:
                    self._unresolved.add(vip)
                    continue
                candidates = [
                    sw
                    for name, sw in sorted(dc.switches.items())
                    if dc.state.switch_is_up(name) and sw.vip_slots_free > 0
                ]
                if not candidates:
                    report.notes.append(f"no healthy switch for stranded {vip}")
                    self._unresolved.add(vip)
                    continue
                target = min(candidates, key=lambda s: (s.utilization, s.name))
                target.add_vip(vip, info.app)
                dc._on_vip_rehomed(vip, target.name)
                report.repaired += 1

    # ------------------------------------------------------------ RIP checks
    def _reconcile_rip_tables(self, report: DriftReport) -> None:
        dc = self.dc
        for rip in sorted(dc.state.rips):
            info = dc.state.rips[rip]
            if not info.vm.is_serving:
                continue  # the registry invariant pass owns this case
            vinfo = dc.state.vips.get(info.vip)
            if vinfo is None or self._in_transfer(info.vip):
                continue
            sw = dc.switches.get(vinfo.switch)
            if sw is None or not sw.has_vip(info.vip):
                continue  # unresolved VIP drift; next pass retries
            entry = sw.entry(info.vip)
            if rip in entry.rips:
                continue
            report.rip_missing += 1
            if not self.repair:
                self._unresolved.add(info.vip)
                continue
            if sw.rip_slots_free <= 0:
                report.notes.append(f"no RIP slot on {sw.name} for {rip}")
                self._unresolved.add(info.vip)
                continue
            weight = (
                sum(entry.rips.values()) / len(entry.rips) if entry.rips else 1.0
            )
            sw.add_rip(info.vip, rip, weight=max(weight, 1e-6))
            if dc.viprip is not None:
                dc.viprip.rip_index[rip] = (info.vip, sw.name)
            dc.state.reconfigurations += 1
            report.repaired += 1

    def _reconcile_orphans(self, report: DriftReport) -> None:
        """Table RIPs nothing accounts for: not registered, not awaiting a
        queued wiring, unknown to the manager's index."""
        dc = self.dc
        for name in sorted(dc.switches):
            sw = dc.switches[name]
            for vip in sorted(sw.vips()):
                if self._in_transfer(vip):
                    continue
                for rip in sorted(sw.entry(vip).rips):
                    if rip in dc.state.rips or rip in dc._pending_wirings:
                        continue
                    if dc.viprip is not None and rip in dc.viprip.rip_index:
                        continue  # a queued del_rip will collect it
                    report.rip_orphaned += 1
                    if self.repair:
                        sw.remove_rip(vip, rip)
                        dc.state.reconfigurations += 1
                        report.repaired += 1

    def _reconcile_manager_index(self, report: DriftReport) -> None:
        """The VIP/RIP manager's rip_index must match the tables it feeds."""
        dc = self.dc
        if dc.viprip is None:
            return
        for rip in sorted(dc.viprip.rip_index):
            vip, switch_name = dc.viprip.rip_index[rip]
            if self._in_transfer(vip):
                continue
            sw = dc.switches.get(switch_name)
            if sw is not None and sw.has_vip(vip) and rip in sw.entry(vip).rips:
                continue
            # Where is the RIP really?
            location = None
            for name in sorted(dc.switches):
                other = dc.switches[name]
                for v in other.vips():
                    if rip in other.entry(v).rips:
                        location = (v, name)
                        break
                if location is not None:
                    break
            if location == (vip, switch_name):
                continue
            report.index_stale += 1
            if not self.repair:
                continue
            if location is not None:
                dc.viprip.rip_index[rip] = location
            elif rip not in dc.state.rips and rip not in dc._pending_wirings:
                # Gone from every table and every registry: drop the entry.
                del dc.viprip.rip_index[rip]
            else:
                continue  # rip pass will restore the table first
            report.repaired += 1

    # ------------------------------------------------------------ DNS checks
    def _reconcile_dns(self, report: DriftReport) -> None:
        """Resolver answers must only expose VIPs that can serve — replays
        the facade's own exposure policy and counts actual rewrites."""
        dc = self.dc
        for app in sorted(dc.specs):
            before = dict(dc.authority.weights(app))
            dc._ensure_exposure(app)
            after = dict(dc.authority.weights(app))
            if after != before:
                report.dns_stale += 1
                report.repaired += 1

    # ------------------------------------------------------ inventory checks
    def _reconcile_vm_inventory(self, report: DriftReport) -> None:
        """Hypervisor inventories vs. RIP registry: a running VM whose
        wiring was lost (e.g. queued behind a crash) is re-wired."""
        dc = self.dc
        for pod_name in sorted(dc.pod_managers):
            pod = dc.pod_managers[pod_name].pod
            for server in pod.servers:
                for vm in server.vms:
                    if not vm.is_serving:
                        continue
                    if vm.rip in dc.state.rips or vm.rip in dc._pending_wirings:
                        continue
                    report.vm_unregistered += 1
                    if self.repair:
                        dc._wire_rip(vm)
                        report.repaired += 1

    # ---------------------------------------------------------------- views
    @property
    def converged(self) -> bool:
        """True when the latest pass found nothing to fix."""
        return bool(self.reports) and self.reports[-1].clean

    @property
    def last_convergence_s(self) -> Optional[float]:
        return self.convergence_times[-1] if self.convergence_times else None

    @property
    def stuck_vips(self) -> list[str]:
        """VIPs the latest pass reported as stuck."""
        return list(self.reports[-1].stuck_vips) if self.reports else []
