"""Control-plane crash safety (the management tier's own fault model).

The paper's serialized VIP/RIP manager is a single point of failure; this
package gives it the survival kit real mega-datacenter controllers carry:

* a :class:`WriteAheadJournal` of intent-before-apply records with
  monotonically increasing epochs, so a crashed manager can be restarted
  and replay the tail with epoch-fenced, idempotent applies;
* periodic :class:`Checkpoint` snapshots (a :class:`CheckpointStore`)
  bounding recovery cost by journal-tail length instead of history length;
* an :class:`AntiEntropyReconciler` that periodically diffs intended
  state (registries, DNS records, VM inventories) against actual state
  (switch tables, resolver answers) and repairs drift through the
  existing knob paths.
"""

from repro.controlplane.checkpoint import Checkpoint, CheckpointStore
from repro.controlplane.journal import JournalRecord, OpPhase, WriteAheadJournal
from repro.controlplane.reconciler import AntiEntropyReconciler, DriftReport

__all__ = [
    "AntiEntropyReconciler",
    "Checkpoint",
    "CheckpointStore",
    "DriftReport",
    "JournalRecord",
    "OpPhase",
    "WriteAheadJournal",
]
