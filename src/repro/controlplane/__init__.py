"""Control-plane crash safety (the management tier's own fault model).

The paper's serialized VIP/RIP manager is a single point of failure; this
package gives it the survival kit real mega-datacenter controllers carry:

* a :class:`WriteAheadJournal` of intent-before-apply records with
  monotonically increasing epochs, so a crashed manager can be restarted
  and replay the tail with epoch-fenced, idempotent applies;
* periodic :class:`Checkpoint` snapshots (a :class:`CheckpointStore`)
  bounding recovery cost by journal-tail length instead of history length;
* an :class:`AntiEntropyReconciler` that periodically diffs intended
  state (registries, DNS records, VM inventories) against actual state
  (switch tables, resolver answers) and repairs drift through the
  existing knob paths;
* a :class:`RetryPolicy` for transient failures — bounded exponential
  backoff whose jitter is a pure hash of the retry key, so reruns stay
  byte-identical;
* a :class:`ShardedControlPlane` that partitions VIP/RIP ownership
  across N manager shards (deterministic :class:`ShardOwnershipMap`,
  epoch-fenced handoffs) and keeps them eventually consistent through
  gossip anti-entropy, tolerating per-shard crashes and shard<->shard
  partitions.
"""

from repro.controlplane.bridge import RipJournalBridge
from repro.controlplane.checkpoint import Checkpoint, CheckpointStore
from repro.controlplane.journal import JournalRecord, OpPhase, WriteAheadJournal
from repro.controlplane.reconciler import AntiEntropyReconciler, DriftReport
from repro.controlplane.retry import RetryPolicy, TransientError
from repro.controlplane.sharding import (
    ControlPlaneShard,
    ShardDriftReport,
    ShardedControlPlane,
    ShardOwnershipMap,
)

__all__ = [
    "AntiEntropyReconciler",
    "Checkpoint",
    "CheckpointStore",
    "ControlPlaneShard",
    "DriftReport",
    "JournalRecord",
    "OpPhase",
    "RetryPolicy",
    "RipJournalBridge",
    "ShardDriftReport",
    "ShardOwnershipMap",
    "ShardedControlPlane",
    "TransientError",
    "WriteAheadJournal",
]
