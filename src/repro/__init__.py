"""repro — a reproduction of "Mega Data Center for Elastic Internet
Applications" (Qian & Rabinovich, IPPS 2014).

The public API in one import::

    from repro import MegaDataCenter, PlatformConfig, WorkloadBuilder, RngHub

Subpackage guide:

* :mod:`repro.core` — the paper's architecture (pods, global manager,
  VIP/RIP manager, the six knobs, the two-layer variant).
* :mod:`repro.sim` — the discrete-event kernel everything runs on.
* :mod:`repro.topology`, :mod:`repro.network`, :mod:`repro.dns`,
  :mod:`repro.lbswitch`, :mod:`repro.hosts`, :mod:`repro.workload`,
  :mod:`repro.placement` — the substrates.
* :mod:`repro.experiments` — experiments E1–E12, ablations, extensions.
"""

from repro.core import MegaDataCenter, PlatformConfig
from repro.sim import Environment, RngHub
from repro.workload import WorkloadBuilder

__version__ = "1.0.0"

__all__ = [
    "MegaDataCenter",
    "PlatformConfig",
    "Environment",
    "RngHub",
    "WorkloadBuilder",
    "__version__",
]
