"""Object-model twin of the columnar data plane.

Steers the *same* request stream through the real object classes — one
:class:`~repro.dns.resolver.Resolver` per client resolver against a real
:class:`~repro.dns.authority.AuthoritativeDNS`, weighted RIP selection off
live :class:`~repro.lbswitch.switch.LBSwitch` VIP entries, and a per-switch
:class:`~repro.lbswitch.conntrack.ConnectionTable` — one request at a time.

Purpose is twofold: it is the throughput baseline the dataplane benchmark
measures the columnar path against, and it is the oracle the differential
harness replays seeded request/fault/knob interleavings through.  Each
request's recorded ``u_dns``/``u_rip`` uniform is injected via a scripted
RNG, so both planes consume identical randomness; a DNS cache hit leaves
the uniform unconsumed on both sides.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.dataplane.steering import SteerReport
from repro.dns.authority import AuthoritativeDNS
from repro.dns.resolver import Resolver
from repro.lbswitch.conntrack import ConnectionTable
from repro.lbswitch.selection import weighted_rip_pick
from repro.lbswitch.switch import LBSwitch
from repro.workload.requests import RequestStream


class _EpochClock:
    """Minimal ``env`` stand-in: the DNS classes only read ``.now``."""

    def __init__(self):
        self.now = 0.0


class _ScriptedRng:
    """Feeds each request's own pre-drawn uniform to ``resolve()``."""

    def __init__(self):
        self.value = 0.0

    def random(self) -> float:
        return self.value


class ObjectDataPlane:
    """Request-at-a-time steering over live control-plane switches."""

    def __init__(
        self,
        switches: Mapping[str, LBSwitch],
        apps: list[str],
        zones: Mapping[str, Mapping[str, float]],
        stream: RequestStream,
        *,
        ttl_s: float,
        violation_factor: float = 10.0,
        switch_max_connections: int = 1_000_000,
    ):
        if stream.n_apps != len(apps):
            raise ValueError("request stream universe must match wired apps")
        self.switches = switches
        self.apps = list(apps)
        self.stream = stream
        self.clock = _EpochClock()
        # The authority validates TTL > 0 at construction; a zero TTL
        # (cache disabled) is modelled by overriding the default after.
        self.authority = AuthoritativeDNS(self.clock, default_ttl_s=max(ttl_s, 1.0))
        self.authority.default_ttl_s = float(ttl_s)
        for app in self.apps:
            self.authority.configure(app, dict(zones[app]))
        self._rng = _ScriptedRng()
        violators = stream.violators()
        self.resolvers = [
            Resolver(
                self.clock,
                self.authority,
                self._rng,
                violator=bool(violators[i]),
                violation_factor=violation_factor,
            )
            for i in range(stream.n_resolvers)
        ]
        self._cap = int(switch_max_connections)
        self.tables: dict[str, ConnectionTable] = {}
        self._vip_home: dict[str, tuple[str, object]] = {}
        # Own session ledger: cid -> (switch, vip, rip); plus close lists
        # so epoch expiry and pod/VIP drops stay O(affected).
        self._conn_info: dict[int, tuple[str, str, str]] = {}
        self._by_close: dict[int, list[int]] = {}
        self._next_cid = 0
        self.opened = 0
        self.closed = 0
        self.dropped = 0
        self.rejected = 0
        self.unserved = 0
        self.refresh()

    # -- control-plane view -------------------------------------------
    def refresh(self) -> None:
        """Re-scan the live switches for each VIP's current home/entry."""
        home: dict[str, tuple[str, object]] = {}
        for name in sorted(self.switches):
            sw = self.switches[name]
            for vip in sw.vips():
                home[vip] = (name, sw.entry(vip))
            if name not in self.tables:
                self.tables[name] = ConnectionTable(self._cap)
        self._vip_home = home

    def _table(self, switch: str) -> ConnectionTable:
        if switch not in self.tables:
            self.tables[switch] = ConnectionTable(self._cap)
        return self.tables[switch]

    # -- knob surfaces (mirror ColumnarDataPlane's) --------------------
    def k1_set_weights(self, app: str, weights: Mapping[str, float]) -> None:
        self.authority.configure(app, dict(weights))

    def is_paused(self, vip: str) -> bool:
        return all(t.is_paused(vip) for t in self.tables.values())

    def drop_vip_conns(self, vip: str) -> int:
        """Forced K2 drop, through the indexed ``ConnectionTable.drop_vip``."""
        doomed = [c for c, info in self._conn_info.items() if info[1] == vip]
        n = sum(t.drop_vip(vip) for t in self.tables.values())
        if n != len(doomed):
            raise AssertionError(
                f"drop_vip({vip}): table killed {n}, ledger had {len(doomed)}"
            )
        for cid in doomed:
            del self._conn_info[cid]
        self.dropped += n
        return n

    def on_pod_loss(self, pod: str) -> int:
        """Kill every session pinned to a RIP homed in *pod*."""
        suffix = f"@{pod}"
        doomed = [
            (cid, info)
            for cid, info in self._conn_info.items()
            if info[2].endswith(suffix)
        ]
        for cid, (switch, _vip, _rip) in doomed:
            self.tables[switch].close(cid)
            del self._conn_info[cid]
        self.dropped += len(doomed)
        return len(doomed)

    def switch_of_vip(self, vip: str) -> Optional[str]:
        self.refresh()
        home = self._vip_home.get(vip)
        return home[0] if home else None

    # -- the epoch path ------------------------------------------------
    def _close_due(self, epoch: int) -> int:
        n = 0
        for e in sorted(k for k in self._by_close if k <= epoch):
            for cid in self._by_close.pop(e):
                info = self._conn_info.pop(cid, None)
                if info is None:  # already force-dropped
                    continue
                self.tables[info[0]].close(cid)
                n += 1
        self.closed += n
        return n

    def steer_epoch(
        self, epoch: int, t: float, record: bool = False
    ) -> SteerReport:
        """Steer one epoch of the stream, one request at a time."""
        import time

        t0 = time.perf_counter()
        self.clock.now = t
        rep = SteerReport(epoch=epoch, t=t)
        rep.closed = self._close_due(epoch)
        self.refresh()
        full = self.stream.epoch_requests(epoch)
        hits0 = sum(r.cache_hits for r in self.resolvers)
        miss0 = sum(r.cache_misses for r in self.resolvers)
        out_vip: list[str] = []
        out_rip: list[Optional[str]] = []
        out_acc: list[bool] = []
        for k in range(len(full)):
            rep.requests += 1
            resolver = self.resolvers[int(full.resolver[k])]
            self._rng.value = float(full.u_dns[k])
            vip = resolver.lookup(self.apps[int(full.app[k])])
            home = self._vip_home.get(vip)
            if home is None or not home[1].rips:
                rep.unserved += 1
                if record:
                    out_vip.append(vip)
                    out_rip.append(None)
                    out_acc.append(False)
                continue
            switch, entry = home
            rip = weighted_rip_pick(entry.rips, float(full.u_rip[k]))
            cid = self._next_cid
            self._next_cid += 1
            ok = self._table(switch).open(cid, vip, rip, now=t)
            if ok:
                rep.opened += 1
                self._conn_info[cid] = (switch, vip, rip)
                self._by_close.setdefault(
                    epoch + int(full.duration[k]), []
                ).append(cid)
            else:
                rep.rejected += 1
            if record:
                out_vip.append(vip)
                out_rip.append(rip)
                out_acc.append(bool(ok))
        rep.dns_hits = sum(r.cache_hits for r in self.resolvers) - hits0
        rep.dns_misses = sum(r.cache_misses for r in self.resolvers) - miss0
        self.opened += rep.opened
        self.rejected += rep.rejected
        self.unserved += rep.unserved
        rep.wall_s = time.perf_counter() - t0
        if record:
            rep.outcomes = {
                "vip": out_vip,
                "rip": out_rip,
                "accepted": np.asarray(out_acc, dtype=bool),
            }
        return rep

    # -- oracle surfaces ----------------------------------------------
    def live_pairs(self) -> dict[tuple[str, str], int]:
        out: dict[tuple[str, str], int] = {}
        for _switch, vip, rip in self._conn_info.values():
            out[(vip, rip)] = out.get((vip, rip), 0) + 1
        return out

    @property
    def alive_count(self) -> int:
        return len(self._conn_info)
