"""Struct-of-arrays connection tracking for the vectorized data plane.

The object :class:`~repro.lbswitch.conntrack.ConnectionTable` keeps one
``Connection`` dataclass per session in a dict per switch.  At mega scale
an epoch opens hundreds of thousands of sessions; this table keeps them
as parallel columns (vip id, rip row, switch id, close epoch, alive bit)
shared across *all* switches, with per-switch and per-VIP counters that
make capacity rejection and K2 pause windows O(1) reads.

Sequential-fill contract: :meth:`try_open_batch` admits requests exactly
as a per-request loop over the object tables would — request *k* is
rejected iff its switch's live count, **including every accepted open
earlier in the batch**, has reached capacity.  That makes rejection
decisions request-for-request identical to the object path, which the
differential harness asserts.
"""

from __future__ import annotations

import numpy as np


def _group_positions(ids: np.ndarray) -> np.ndarray:
    """Position of each element within its id-group, in array order.

    ``[3, 5, 3, 3, 5] -> [0, 0, 1, 2, 1]`` — the running per-id count a
    sequential loop would see before handling each element.
    """
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    n = ids.shape[0]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
    )
    lengths = np.diff(np.concatenate((starts, [n])))
    pos_sorted = np.arange(n, dtype=np.int64) - np.repeat(starts, lengths)
    pos = np.empty(n, dtype=np.int64)
    pos[order] = pos_sorted
    return pos


class ColumnarConnTable:
    """Session affinity columns with per-switch capacity enforcement."""

    _GROW = 1024

    def __init__(self, n_switches: int, switch_capacity, n_vips: int = 0):
        if n_switches < 1:
            raise ValueError("need at least one switch")
        cap = np.broadcast_to(
            np.asarray(switch_capacity, dtype=np.int64), (n_switches,)
        ).copy()
        if (cap < 1).any():
            raise ValueError("switch capacities must be >= 1")
        self.switch_cap = cap
        self.switch_count = np.zeros(n_switches, dtype=np.int64)
        self.vip_count = np.zeros(max(0, n_vips), dtype=np.int64)
        self.rejected_by_switch = np.zeros(n_switches, dtype=np.int64)
        n = self._GROW
        self.conn_vip = np.full(n, -1, dtype=np.int64)
        self.conn_rip = np.full(n, -1, dtype=np.int64)
        self.conn_switch = np.full(n, -1, dtype=np.int64)
        self.close_epoch = np.full(n, -1, dtype=np.int64)
        self.alive = np.zeros(n, dtype=bool)
        self._size = 0
        self.opened = 0
        self.closed = 0
        self.dropped = 0

    # -- sizing -------------------------------------------------------
    def _ensure(self, extra: int) -> None:
        need = self._size + extra
        cap = self.conn_vip.shape[0]
        if need <= cap:
            return
        new = max(cap * 2, need)
        for attr, fill in (
            ("conn_vip", -1), ("conn_rip", -1), ("conn_switch", -1),
            ("close_epoch", -1), ("alive", False),
        ):
            old = getattr(self, attr)
            grown = np.full(new, fill, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, attr, grown)

    def ensure_vips(self, n_vips: int) -> None:
        if n_vips > self.vip_count.shape[0]:
            grown = np.zeros(n_vips, dtype=np.int64)
            grown[: self.vip_count.shape[0]] = self.vip_count
            self.vip_count = grown

    def ensure_switches(self, n_switches: int, capacity) -> None:
        """Grow the switch dimension (a VIP move can land on a switch the
        registry had not tracked yet); new switches get *capacity*."""
        old = self.switch_cap.shape[0]
        if n_switches <= old:
            return
        cap = np.full(n_switches, int(capacity), dtype=np.int64)
        cap[:old] = self.switch_cap
        self.switch_cap = cap
        for attr in ("switch_count", "rejected_by_switch"):
            grown = np.zeros(n_switches, dtype=np.int64)
            grown[:old] = getattr(self, attr)
            setattr(self, attr, grown)

    @property
    def alive_count(self) -> int:
        return int(self.switch_count.sum())

    @property
    def rejected(self) -> int:
        return int(self.rejected_by_switch.sum())

    # -- the hot path -------------------------------------------------
    def try_open_batch(
        self,
        vip: np.ndarray,
        rip: np.ndarray,
        switch: np.ndarray,
        close_epoch: np.ndarray,
    ) -> np.ndarray:
        """Admit a batch of opens under sequential-fill capacity checks.

        Returns the accepted mask; rejected requests count per switch.
        """
        n = vip.shape[0]
        if n == 0:
            return np.zeros(0, dtype=bool)
        pos = _group_positions(switch)
        accepted = self.switch_count[switch] + pos < self.switch_cap[switch]
        rej = np.flatnonzero(~accepted)
        if rej.size:
            np.add.at(self.rejected_by_switch, switch[rej], 1)
        acc = np.flatnonzero(accepted)
        if acc.size:
            self._ensure(acc.size)
            lo, hi = self._size, self._size + acc.size
            self.conn_vip[lo:hi] = vip[acc]
            self.conn_rip[lo:hi] = rip[acc]
            self.conn_switch[lo:hi] = switch[acc]
            self.close_epoch[lo:hi] = close_epoch[acc]
            self.alive[lo:hi] = True
            self._size = hi
            self.switch_count += np.bincount(
                switch[acc], minlength=self.switch_cap.shape[0]
            )
            if vip[acc].size:
                self.ensure_vips(int(vip[acc].max()) + 1)
                self.vip_count += np.bincount(
                    vip[acc], minlength=self.vip_count.shape[0]
                )
            self.opened += acc.size
        return accepted

    def _retire(self, idx: np.ndarray) -> int:
        """Mark rows dead and roll their counters back."""
        if idx.size == 0:
            return 0
        self.alive[idx] = False
        self.switch_count -= np.bincount(
            self.conn_switch[idx], minlength=self.switch_cap.shape[0]
        )
        self.vip_count -= np.bincount(
            self.conn_vip[idx], minlength=self.vip_count.shape[0]
        )
        return int(idx.size)

    def close_due(self, epoch: int) -> int:
        """Close every session whose lifetime ends at/before *epoch*."""
        idx = np.flatnonzero(
            self.alive[: self._size]
            & (self.close_epoch[: self._size] <= epoch)
        )
        n = self._retire(idx)
        self.closed += n
        self._maybe_compact()
        return n

    def drop_vip(self, vip_id: int) -> int:
        """Forced drop of one VIP's sessions (K2 without a pause)."""
        idx = np.flatnonzero(
            self.alive[: self._size] & (self.conn_vip[: self._size] == vip_id)
        )
        n = self._retire(idx)
        self.dropped += n
        return n

    def drop_rips(self, rip_mask: np.ndarray) -> int:
        """Drop sessions pinned to RIP rows flagged in *rip_mask* (pod
        loss: every session homed in the dead pod dies with it)."""
        rips = self.conn_rip[: self._size]
        idx = np.flatnonzero(self.alive[: self._size] & rip_mask[rips])
        n = self._retire(idx)
        self.dropped += n
        return n

    def _maybe_compact(self) -> None:
        """Shed dead rows once they dominate, keeping memory bounded by
        the live session count rather than total sessions ever opened."""
        if self._size < 4 * self._GROW:
            return
        live = self.alive[: self._size]
        n_live = int(live.sum())
        if n_live * 2 > self._size:
            return
        keep = np.flatnonzero(live)
        for attr in (
            "conn_vip", "conn_rip", "conn_switch", "close_epoch", "alive"
        ):
            col = getattr(self, attr)
            col[: keep.size] = col[keep]
        self._size = keep.size

    # -- reads --------------------------------------------------------
    def count_for_vip(self, vip_id: int) -> int:
        if vip_id >= self.vip_count.shape[0]:
            return 0
        return int(self.vip_count[vip_id])

    def is_paused(self, vip_id: int) -> bool:
        """True when the VIP has no live sessions (K2 transfer window)."""
        return self.count_for_vip(vip_id) == 0

    def live_pairs(self) -> dict[tuple[int, int], int]:
        """``(vip id, rip row) -> live session count`` (oracle surface)."""
        live = np.flatnonzero(self.alive[: self._size])
        out: dict[tuple[int, int], int] = {}
        vips = self.conn_vip[live]
        rips = self.conn_rip[live]
        for v, r in zip(vips.tolist(), rips.tolist()):
            out[(v, r)] = out.get((v, r), 0) + 1
        return out
