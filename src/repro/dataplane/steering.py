"""Batched app → VIP → RIP request steering over the columnar RIP mirror.

:class:`ColumnarDataPlane` is the mega loop's traffic path: each epoch it
consumes the :class:`~repro.workload.requests.RequestStream`'s chunks and
resolves every request entirely in numpy — DNS answer (vectorized TTL
cache + per-app CDF draw), VIP → serving switch and weighted RIP pick
(per-VIP CSR views over :class:`~repro.core.columnar.ColumnarRipRegistry`,
rebuilt only when the mirror's ``ops_applied`` moves), and session open
against the struct-of-arrays :class:`ColumnarConnTable`.

Equivalence to the object path holds request-for-request (same VIP, same
RIP, same rejection) because every stochastic choice goes through the
same shared CDF arithmetic (:func:`repro.dns.policy.weighted_cdf`) over
the same name-sorted orderings the object classes use, fed by the same
per-request uniforms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.columnar import ColumnarRipRegistry
from repro.dataplane.conntable import ColumnarConnTable
from repro.dataplane.dnstable import VectorizedDnsTable
from repro.dns.policy import weighted_cdf
from repro.workload.requests import RequestStream


def zones_from_homing(
    homing: Mapping[str, tuple], apps: Sequence[str]
) -> dict[str, dict[str, float]]:
    """DNS zones (app → {vip: weight 1.0}) from an authoritative
    ``rip -> (app, vip, switch, weight)`` snapshot.

    The VIP *set* per app is fixed by the control-plane bootstrap; DNS
    exposure weights start uniform and move only through K1.
    """
    zones: dict[str, dict[str, float]] = {a: {} for a in apps}
    for rip in sorted(homing):
        app, vip = homing[rip][0], homing[rip][1]
        if app in zones:
            zones[app][vip] = 1.0
    missing = [a for a, z in zones.items() if not z]
    if missing:
        raise ValueError(f"apps with no VIPs in homing snapshot: {missing}")
    return zones


@dataclass
class SteerReport:
    """One epoch's steering outcome."""

    epoch: int
    t: float
    requests: int = 0
    dns_hits: int = 0
    dns_misses: int = 0
    opened: int = 0
    rejected: int = 0
    unserved: int = 0
    closed: int = 0
    wall_s: float = 0.0
    #: Per-request outcomes when recording (differential oracle surface):
    #: ``vip`` (name per request), ``rip`` (name or None), ``accepted``.
    outcomes: Optional[dict] = field(default=None, repr=False)

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0


class ColumnarDataPlane:
    """Vectorized steering layer bound to a RIP-mirror registry."""

    def __init__(
        self,
        registry: ColumnarRipRegistry,
        apps: Sequence[str],
        stream: RequestStream,
        *,
        ttl_s: float,
        violation_factor: float = 10.0,
        switch_max_connections: int = 1_000_000,
        chunk_requests: Optional[int] = None,
        trace=None,
    ):
        if stream.n_apps != len(apps):
            raise ValueError("request stream universe must match wired apps")
        self.registry = registry
        self.apps = list(apps)
        self.stream = stream
        self.chunk_requests = chunk_requests
        self.trace = trace
        zones = self._zones_from_registry()
        self.dns = VectorizedDnsTable(
            self.apps,
            zones,
            stream.n_resolvers,
            ttl_s=ttl_s,
            violators=stream.violators(),
            violation_factor=violation_factor,
        )
        # DNS table slots -> registry vip ids (the bridge between the
        # answer draw and the serving view).
        self._slot_vid = np.asarray(
            [registry.vips.get(v) for v in self.dns.vip_names], dtype=np.int64
        )
        self.conn = ColumnarConnTable(
            n_switches=max(1, len(registry.switches)),
            switch_capacity=switch_max_connections,
            n_vips=len(registry.vips),
        )
        self._default_switch_cap = int(switch_max_connections)
        self._reg_version = -1
        self._vs_indptr = np.zeros(1, dtype=np.int64)
        self._vs_rids = np.zeros(0, dtype=np.int64)
        self._vs_cdf = np.zeros(0)
        self._vip_switch = np.zeros(0, dtype=np.int64)
        self.epochs_steered = 0
        self.last_report: Optional[SteerReport] = None
        #: When set, driver-internal steers record per-request outcomes
        #: (the differential oracle flips this on).
        self.record_outcomes = False
        self.refresh()

    # -- registry views -----------------------------------------------
    def _zones_from_registry(self) -> dict[str, dict[str, float]]:
        """App → VIP set from *all* mirror rows (active or not): a VIP
        whose RIPs are momentarily all down must stay answerable — the
        paper's DNS layer does not track RIP liveness, K1 does."""
        reg = self.registry
        zones: dict[str, dict[str, float]] = {a: {} for a in self.apps}
        n = reg.n_rips
        for rid in range(n):
            aid = int(reg.rip_app[rid])
            if aid < 0:
                continue
            app = reg.apps.name(aid)
            if app in zones:
                zones[app][reg.vips.name(int(reg.rip_vip[rid]))] = 1.0
        missing = [a for a, z in zones.items() if not z]
        if missing:
            raise ValueError(f"apps with no wired VIPs: {missing}")
        return zones

    def refresh(self) -> bool:
        """Rebuild the per-VIP serving view if the mirror changed.

        The view is CSR by registry VIP id: active RIP rows sorted by RIP
        *name* (the object tables' canonical order) with a normalized
        weight CDF per segment, plus each VIP's current home switch.
        """
        reg = self.registry
        if reg.ops_applied == self._reg_version:
            return False
        n = reg.n_rips
        act = np.flatnonzero(reg.rip_active[:n])
        vids = reg.rip_vip[act]
        names = np.asarray([reg.rips.name(int(r)) for r in act])
        order = np.lexsort((names, vids))
        act, vids = act[order], vids[order]
        n_vips = len(reg.vips)
        indptr = np.zeros(n_vips + 1, dtype=np.int64)
        np.cumsum(np.bincount(vids, minlength=n_vips), out=indptr[1:])
        cdf = np.empty(act.shape[0])
        for v in np.unique(vids):
            lo, hi = int(indptr[v]), int(indptr[v + 1])
            cdf[lo:hi] = weighted_cdf(reg.rip_weight[act[lo:hi]])
        vip_switch = np.full(n_vips, -1, dtype=np.int64)
        vip_switch[vids] = reg.rip_switch[act]
        self._vs_indptr = indptr
        self._vs_rids = act
        self._vs_cdf = cdf
        self._vip_switch = vip_switch
        self.conn.ensure_vips(n_vips)
        self.conn.ensure_switches(
            max(1, len(reg.switches)), self._default_switch_cap
        )
        self._reg_version = reg.ops_applied
        return True

    # -- knob surfaces ------------------------------------------------
    def k1_set_weights(self, app: str, weights: Mapping[str, float]) -> None:
        """K1 re-steer: apply a DNS VIP-weight update to the vectorized
        tables.  Cached answers keep converging over one TTL, exactly the
        dynamics of the object resolvers."""
        self.dns.set_weights(app, weights)

    def is_paused(self, vip: str) -> bool:
        """K2 pause window from the columnar conn counters."""
        if vip not in self.registry.vips:
            return True
        return self.conn.is_paused(self.registry.vips.get(vip))

    def drop_vip_conns(self, vip: str) -> int:
        """Forced K2: kill a VIP's live sessions (service disruption)."""
        if vip not in self.registry.vips:
            return 0
        return self.conn.drop_vip(self.registry.vips.get(vip))

    def switch_of_vip(self, vip: str) -> Optional[str]:
        if vip not in self.registry.vips:
            return None
        self.refresh()
        sid = int(self._vip_switch[self.registry.vips.get(vip)])
        return self.registry.switches.name(sid) if sid >= 0 else None

    def on_pod_loss(self, pod: str) -> int:
        """A pod died: every live session pinned to one of its RIPs dies
        with it, on whatever switch tracked it."""
        reg = self.registry
        if pod not in reg.pods:
            return 0
        pid = reg.pods.get(pod)
        n = reg.n_rips
        mask = np.zeros(max(n, 1), dtype=bool)
        mask[:n] = reg.rip_pod[:n] == pid
        return self.conn.drop_rips(mask)

    # -- the epoch hot path -------------------------------------------
    def steer_epoch(
        self, epoch: int, t: float, record: Optional[bool] = None
    ) -> SteerReport:
        """Steer one epoch's request stream; returns the outcome report.

        Order of operations matches the object path: expire finished
        sessions first, then process requests in stream order (chunked —
        chunk size cannot change any outcome; see the conn table's
        sequential-fill contract).
        """
        if record is None:
            record = self.record_outcomes
        t0 = time.perf_counter()
        self.refresh()
        rep = SteerReport(epoch=epoch, t=t)
        rep.closed = self.conn.close_due(epoch)
        hits0, miss0 = self.dns.cache_hits, self.dns.cache_misses
        rej0 = self.conn.rejected
        indptr, rids, cdf = self._vs_indptr, self._vs_rids, self._vs_cdf
        if record:
            out_vip: list[np.ndarray] = []
            out_rid: list[np.ndarray] = []
            out_acc: list[np.ndarray] = []
        for chunk in self.stream.chunks(epoch, self.chunk_requests):
            n = len(chunk)
            rep.requests += n
            slot = self.dns.resolve_batch(
                chunk.resolver, chunk.app, chunk.u_dns, now=t
            )
            vid = self._slot_vid[slot]
            served = indptr[vid + 1] > indptr[vid]
            srv = np.flatnonzero(served)
            rep.unserved += n - srv.size
            vids_s = vid[srv]
            rid = np.empty(srv.size, dtype=np.int64)
            order = np.argsort(vids_s, kind="stable")
            sorted_v = vids_s[order]
            bounds = np.flatnonzero(np.diff(sorted_v)) + 1
            starts = np.concatenate(([0], bounds))
            ends = np.concatenate((bounds, [sorted_v.size]))
            u_rip_s = chunk.u_rip[srv]
            for s, e in zip(starts, ends):
                v = int(sorted_v[s])
                lo, hi = int(indptr[v]), int(indptr[v + 1])
                sel = order[s:e]
                rid[sel] = rids[
                    lo
                    + np.searchsorted(cdf[lo:hi], u_rip_s[sel], side="right")
                ]
            accepted = self.conn.try_open_batch(
                vids_s,
                rid,
                self._vip_switch[vids_s],
                epoch + chunk.duration[srv],
            )
            rep.opened += int(accepted.sum())
            if record:
                full_rid = np.full(n, -1, dtype=np.int64)
                full_rid[srv] = rid
                full_acc = np.zeros(n, dtype=bool)
                full_acc[srv] = accepted
                out_vip.append(vid)
                out_rid.append(full_rid)
                out_acc.append(full_acc)
        rep.dns_hits = self.dns.cache_hits - hits0
        rep.dns_misses = self.dns.cache_misses - miss0
        rep.rejected = self.conn.rejected - rej0
        rep.wall_s = time.perf_counter() - t0
        if record:
            reg = self.registry
            vid_all = np.concatenate(out_vip) if out_vip else np.zeros(0, np.int64)
            rid_all = np.concatenate(out_rid) if out_rid else np.zeros(0, np.int64)
            rep.outcomes = {
                "vip": [reg.vips.name(int(v)) for v in vid_all],
                "rip": [
                    reg.rips.name(int(r)) if r >= 0 else None for r in rid_all
                ],
                "accepted": (
                    np.concatenate(out_acc)
                    if out_acc
                    else np.zeros(0, dtype=bool)
                ),
            }
        self.epochs_steered += 1
        self.last_report = rep
        if self.trace is not None and self.trace.enabled:
            self.trace.emit(
                "dataplane.steer", t=t, epoch=epoch,
                requests=rep.requests, dns_hits=rep.dns_hits,
                dns_misses=rep.dns_misses, opened=rep.opened,
                rejected=rep.rejected, unserved=rep.unserved,
                closed=rep.closed,
            )
            self.trace.emit(
                "dataplane.conntrack", t=t, epoch=epoch,
                alive=self.conn.alive_count, opened_total=self.conn.opened,
                closed_total=self.conn.closed,
                dropped_total=self.conn.dropped,
            )
        return rep

    # -- oracle surfaces ----------------------------------------------
    def live_pairs(self) -> dict[tuple[str, str], int]:
        """``(vip name, rip name) -> live sessions`` for the oracle."""
        reg = self.registry
        return {
            (reg.vips.name(v), reg.rips.name(r)): c
            for (v, r), c in self.conn.live_pairs().items()
        }
