"""Vectorized traffic data plane for the mega-scale loop.

The object model serves DNS answers and pins TCP sessions one Python call
at a time (:class:`~repro.dns.resolver.Resolver`,
:class:`~repro.lbswitch.conntrack.ConnectionTable`).  This package is the
columnar counterpart the 300k-server loop steers traffic with: batched
numpy request resolution app → VIP → RIP over the
:class:`~repro.core.columnar.ColumnarRipRegistry` mirror, TTL caches as
array masks, and a struct-of-arrays connection table — proven
request-for-request equivalent to the object path by
:func:`repro.testing.differential.run_dataplane_differential`.
"""

from repro.dataplane.conntable import ColumnarConnTable
from repro.dataplane.dnstable import VectorizedDnsTable
from repro.dataplane.objectpath import ObjectDataPlane
from repro.dataplane.steering import ColumnarDataPlane, SteerReport, zones_from_homing

__all__ = [
    "ColumnarConnTable",
    "ColumnarDataPlane",
    "ObjectDataPlane",
    "SteerReport",
    "VectorizedDnsTable",
    "zones_from_homing",
]
