"""Vectorized weighted-DNS tables with columnar TTL caches.

One :class:`VectorizedDnsTable` replaces an authority plus a whole
resolver population on the hot path: per-app VIP weight vectors become
per-app CDF segments (built through the shared
:func:`repro.dns.policy.weighted_cdf`, so a batched ``searchsorted`` draw
is bit-identical to the scalar ``AuthoritativeDNS.resolve``), and every
resolver's TTL cache becomes one row of a ``(n_resolvers, n_apps)``
expiry matrix instead of a per-resolver dict.

Sequential-equivalence contract (what the differential harness proves):
resolving a batch of requests must behave exactly as if each request were
processed one at a time through an object resolver —

* a request whose cache cell is fresh (``now < expires``) is a hit and
  keeps the cached VIP, leaving its ``u_dns`` unconsumed;
* the **first** stale occurrence of each ``(resolver, app)`` pair in the
  batch draws a fresh answer with its own ``u_dns`` and writes the cache;
* later occurrences of the same pair in the same batch then *hit* that
  fresh entry (positive TTL) — unless the TTL is zero, in which case the
  entry is already expired and every occurrence draws independently.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.dns.policy import weighted_cdf


class VectorizedDnsTable:
    """Columnar authority + resolver-population cache for a fixed app set.

    ``apps`` fixes the app slots; ``zones[app]`` maps VIP name → weight
    (the VIP *set* is fixed at construction, weights change via
    :meth:`set_weights` — the K1 re-steer path).  VIPs are name-sorted
    within each app's segment, matching ``AuthoritativeDNS``'s record
    order, and get global *slots* ``vip_indptr[a] + offset``.
    """

    def __init__(
        self,
        apps: Sequence[str],
        zones: Mapping[str, Mapping[str, float]],
        n_resolvers: int,
        ttl_s: float,
        violators: Optional[np.ndarray] = None,
        violation_factor: float = 10.0,
    ):
        if ttl_s < 0:
            raise ValueError("ttl_s must be non-negative")
        if violation_factor < 1:
            raise ValueError("violation_factor must be >= 1")
        self.apps = list(apps)
        self.n_apps = len(self.apps)
        self.n_resolvers = int(n_resolvers)
        self.ttl_s = float(ttl_s)
        self._app_slot = {a: i for i, a in enumerate(self.apps)}
        counts = np.zeros(self.n_apps, dtype=np.int64)
        names: list[str] = []
        for i, app in enumerate(self.apps):
            zone = zones[app]
            if not zone:
                raise ValueError(f"app {app}: empty VIP set")
            vips = sorted(zone)
            counts[i] = len(vips)
            names.extend(vips)
        self.vip_indptr = np.zeros(self.n_apps + 1, dtype=np.int64)
        np.cumsum(counts, out=self.vip_indptr[1:])
        self.vip_names = names
        self.weights = np.zeros(len(names))
        self.cdf = np.zeros(len(names))
        for i, app in enumerate(self.apps):
            self._rebuild_segment(i, zones[app])
        self.weight_updates = 0
        # -- resolver population cache columns -------------------------
        if violators is None:
            violators = np.zeros(self.n_resolvers, dtype=bool)
        violators = np.asarray(violators, dtype=bool)
        if violators.shape != (self.n_resolvers,):
            raise ValueError("violators mask must align with resolvers")
        self.ttl_eff = self.ttl_s * np.where(violators, violation_factor, 1.0)
        self.cached = np.full((self.n_resolvers, self.n_apps), -1, dtype=np.int64)
        self.expires = np.full((self.n_resolvers, self.n_apps), -np.inf)
        self.cache_hits = 0
        self.cache_misses = 0

    # -- configuration (K1 surface) -----------------------------------
    def _rebuild_segment(self, slot: int, zone: Mapping[str, float]) -> None:
        lo, hi = int(self.vip_indptr[slot]), int(self.vip_indptr[slot + 1])
        vips = self.vip_names[lo:hi]
        if sorted(zone) != vips:
            raise ValueError(
                f"app {self.apps[slot]}: VIP set changed "
                f"({sorted(zone)} != {vips})"
            )
        w = np.asarray([zone[v] for v in vips], dtype=float)
        if (w < 0).any() or w.sum() <= 0:
            raise ValueError(f"app {self.apps[slot]}: bad weight vector")
        self.weights[lo:hi] = w
        self.cdf[lo:hi] = weighted_cdf(w)

    def set_weights(self, app: str, weights: Mapping[str, float]) -> None:
        """K1 re-steer: replace one app's VIP weight vector in place."""
        self._rebuild_segment(self._app_slot[app], weights)
        self.weight_updates += 1

    def zone(self, app: str) -> dict[str, float]:
        slot = self._app_slot[app]
        lo, hi = int(self.vip_indptr[slot]), int(self.vip_indptr[slot + 1])
        return {
            v: float(self.weights[lo + i])
            for i, v in enumerate(self.vip_names[lo:hi])
        }

    def flush(self, app: Optional[str] = None) -> None:
        """Expire cached answers (all apps, or one app's column)."""
        if app is None:
            self.expires[:, :] = -np.inf
            self.cached[:, :] = -1
        else:
            slot = self._app_slot[app]
            self.expires[:, slot] = -np.inf
            self.cached[:, slot] = -1

    # -- resolution ---------------------------------------------------
    def resolve_batch(
        self,
        resolver: np.ndarray,
        app: np.ndarray,
        u_dns: np.ndarray,
        now: float,
    ) -> np.ndarray:
        """Resolve one request batch; returns each request's VIP slot.

        Mutates the cache exactly as the equivalent sequence of scalar
        ``Resolver.lookup`` calls would (see the module docstring for the
        within-batch duplicate semantics).
        """
        out = np.empty(resolver.shape[0], dtype=np.int64)
        fresh = now < self.expires[resolver, app]
        hits = np.flatnonzero(fresh)
        out[hits] = self.cached[resolver[hits], app[hits]]
        miss = np.flatnonzero(~fresh)
        if miss.size == 0:
            self.cache_hits += hits.size
            return out
        if self.ttl_s > 0:
            # Only the first occurrence of each (resolver, app) pair
            # queries; the rest hit the entry it caches.
            key = resolver[miss] * np.int64(self.n_apps) + app[miss]
            _, first = np.unique(key, return_index=True)
            draw = miss[np.sort(first)]
        else:
            draw = miss
        apps_d = app[draw]
        order = np.argsort(apps_d, kind="stable")
        sorted_apps = apps_d[order]
        chosen = np.empty(draw.size, dtype=np.int64)
        bounds = np.flatnonzero(np.diff(sorted_apps)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [sorted_apps.size]))
        for s, e in zip(starts, ends):
            a = int(sorted_apps[s])
            lo, hi = self.vip_indptr[a], self.vip_indptr[a + 1]
            sel = order[s:e]
            chosen[sel] = lo + np.searchsorted(
                self.cdf[lo:hi], u_dns[draw[sel]], side="right"
            )
        out[draw] = chosen
        self.cached[resolver[draw], app[draw]] = chosen
        self.expires[resolver[draw], app[draw]] = (
            now + self.ttl_eff[resolver[draw]]
        )
        if self.ttl_s > 0 and draw.size < miss.size:
            # Later duplicates read the entry their first occurrence
            # just cached — sequentially those are cache *hits*.
            out[miss] = self.cached[resolver[miss], app[miss]]
        self.cache_misses += draw.size
        self.cache_hits += hits.size + (miss.size - draw.size)
        return out

    def vip_name(self, slot: int) -> str:
        return self.vip_names[slot]
