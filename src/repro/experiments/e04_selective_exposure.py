"""E4 — selective VIP exposure vs. naive BGP re-advertisement (Section IV-A).

Paper claims: "with selective VIP exposing, overloaded links are relieved
as soon as DNS starts exposing new VIPs, and routing updates are
infrequent", whereas "load balancing based on [...] dynamic VIP
advertising is slow and increases the number of route updates".

Scenario: four access links, one of them smaller; a demand surge at
``spike_at`` pushes the small link over the overload threshold.  The K1
strategy reweights DNS answers; the naive strategy re-advertises VIPs over
BGP (advertise new + pad old + drain + withdraw = 3 updates each).  We
measure time-to-relief and route-update counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.reporting import Table
from repro.core.knobs.base import ActionLog
from repro.core.knobs.exposure import NaiveReadvertisement, SelectiveVipExposure
from repro.dns.authority import AuthoritativeDNS
from repro.dns.policy import InverseUtilizationPolicy
from repro.dns.population import FluidDNSModel
from repro.network.bgp import BGPAnnouncer
from repro.network.links import AccessLink, InternetSide
from repro.sim import Environment
from repro.sim.monitor import TimeSeries

LINKS = (
    ("link-a", 6.0),
    ("link-b", 10.0),
    ("link-c", 10.0),
    ("link-d", 10.0),
)


class ExposureScenario:
    """Fluid access-link scenario driven by one of two control strategies."""

    def __init__(
        self,
        strategy: str,
        n_apps: int = 40,
        vips_per_app: int = 3,  # the paper's default; 2 leaves some
        # link-pairs structurally unable to shed the overload
        base_total_gbps: float = 16.0,
        spike_factor: float = 1.8,
        spike_at: float = 600.0,
        dns_ttl_s: float = 30.0,
        violator_fraction: float = 0.1,
        bgp_convergence_s: float = 30.0,
        session_tau_s: float = 60.0,
        overload_threshold: float = 0.85,
        dt: float = 5.0,
        control_period_s: float = 30.0,
    ):
        if strategy not in ("k1", "naive"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.spike_factor = spike_factor
        self.spike_at = spike_at
        self.session_tau_s = session_tau_s
        self.overload_threshold = overload_threshold
        self.dt = dt
        self.control_period_s = control_period_s

        self.env = Environment()
        self.internet = InternetSide(self.env)
        self.internet.add_border("br-1")
        for name, cap in LINKS:
            self.internet.add_access_link(name, "isp", f"AR-{name}", "br-1", cap)
        self.authority = AuthoritativeDNS(self.env, dns_ttl_s)
        self.fluid = FluidDNSModel(self.authority, violator_fraction=violator_fraction)
        self.bgp = BGPAnnouncer(self.env, bgp_convergence_s)
        self.log = ActionLog()
        self.k1 = SelectiveVipExposure(
            self.env, self.authority, InverseUtilizationPolicy(overload_threshold), self.log
        )
        self.naive = NaiveReadvertisement(self.env, self.bgp, self.log)

        # Apps: equal demand, VIPs pinned round-robin over the links.
        self.app_demand = {f"app-{i:03d}": base_total_gbps / n_apps for i in range(n_apps)}
        self.vip_link: dict[str, str] = {}
        self.app_vips: dict[str, list[str]] = {}
        link_names = [name for name, _ in LINKS]
        li = 0
        for app in self.app_demand:
            vips = []
            for v in range(vips_per_app):
                vip = f"{app}-v{v}"
                link = link_names[li % len(link_names)]
                li += 1
                self.vip_link[vip] = link
                self.bgp.advertise_now(vip, link)
                vips.append(vip)
            self.app_vips[app] = vips
            self.authority.configure(app, {v: 1.0 for v in vips})
            self.fluid.ensure_app(app)

        # Residual (draining) traffic per vip after a naive move:
        # vip -> (old link, convergence time).
        self._moves: dict[str, tuple[str, float]] = {}
        self._moving: set[str] = set()
        self.util_series = {name: TimeSeries(self.env, name) for name, _ in LINKS}
        self.relief_time = math.inf
        self.peak_util = 0.0

    # -- demand & attribution ---------------------------------------------
    def demand(self, app: str, t: float) -> float:
        base = self.app_demand[app]
        return base * self.spike_factor if t >= self.spike_at else base

    def link_loads(self, t: float) -> dict[str, float]:
        loads = {name: 0.0 for name, _ in LINKS}
        for app, vips in self.app_vips.items():
            d = self.demand(app, t)
            if self.strategy == "k1":
                shares = self.fluid.shares(app)
            else:
                shares = {v: 1.0 / len(vips) for v in vips}
            for vip in vips:
                traffic = d * shares.get(vip, 0.0)
                loads[self.vip_link[vip]] += traffic
                move = self._moves.get(vip)
                if move is not None:
                    old_link, t_conv = move
                    residual = traffic * math.exp(-(t - t_conv) / self.session_tau_s)
                    loads[old_link] += residual
                    # new link carries the complement already counted above;
                    # subtract the residual from it to conserve traffic.
                    loads[self.vip_link[vip]] -= residual
        return loads

    # -- control strategies -----------------------------------------------------
    def _settled_link_loads(self, t: float) -> dict[str, float]:
        """Link loads once clients fully converge to the current DNS
        weights — the model-based view a lag-aware controller plans on
        (reacting to the *measured*, TTL-lagged loads overshoots and
        oscillates)."""
        loads = {name: 0.0 for name, _ in LINKS}
        for app, vips in self.app_vips.items():
            d = self.demand(app, t)
            weights = self.authority.weights(app)
            total = sum(weights.values())
            for vip in vips:
                loads[self.vip_link[vip]] += d * weights.get(vip, 0.0) / total
        return loads

    def _control_k1(self):
        # Planning copies of the links, loaded with settled values.
        plan_links = {
            name: AccessLink(name, "isp", "AR", cap).attach(self.env)
            for name, cap in LINKS
        }
        while True:
            yield self.env.timeout(self.control_period_s)
            settled = self._settled_link_loads(self.env.now)
            for name, load in settled.items():
                plan_links[name].set_load(load)
            hot = {
                name
                for name, link in plan_links.items()
                if link.utilization > self.overload_threshold
            }
            if not hot:
                continue
            for app, vips in self.app_vips.items():
                if any(self.vip_link[v] in hot for v in vips):
                    vip_links = {v: plan_links[self.vip_link[v]] for v in vips}
                    self.k1.rebalance_app(app, vip_links)

    def _control_naive(self):
        while True:
            yield self.env.timeout(self.control_period_s)
            overloaded = self.internet.overloaded(self.overload_threshold)
            if not overloaded:
                continue
            link = overloaded[0].name
            vip = self._busiest_vip_on(link)
            if vip is None:
                continue
            target = min(
                self.internet.links.values(),
                key=lambda l: (l.utilization, l.name),
            ).name
            if target == link:
                continue
            self._moving.add(vip)
            self.env.process(self._do_naive_move(vip, link, target))

    def _do_naive_move(self, vip: str, old: str, new: str):
        t_start = self.env.now

        def residual_traffic() -> float:
            move = self._moves.get(vip)
            if move is None:
                return math.inf  # not converged yet
            _, t_conv = move
            app = vip.rsplit("-v", 1)[0]
            share = 1.0 / len(self.app_vips[app])
            return (
                self.demand(app, self.env.now)
                * share
                * math.exp(-(self.env.now - t_conv) / self.session_tau_s)
            )

        # Rebind after convergence is handled by watching the BGP calls:
        # advertise(new) + pad(old) both take one convergence delay.
        def rebind_after_convergence():
            yield self.env.timeout(self.bgp.convergence_s)
            self._moves[vip] = (old, self.env.now)
            self.vip_link[vip] = new

        self.env.process(rebind_after_convergence())
        yield from self.naive.transfer_vip(vip, old, new, residual_traffic)
        self._moving.discard(vip)

    def _busiest_vip_on(self, link: str):
        best, best_d = None, 0.0
        for app, vips in self.app_vips.items():
            for vip in vips:
                if self.vip_link[vip] != link or vip in self._moving:
                    continue
                d = self.demand(app, self.env.now) / len(vips)
                if d > best_d:
                    best, best_d = vip, d
        return best

    # -- main loop ---------------------------------------------------------------
    def _monitor(self):
        while True:
            t = self.env.now
            loads = self.link_loads(t)
            for name, load in loads.items():
                self.internet.link(name).set_load(load)
                self.util_series[name].observe(self.internet.link(name).utilization)
            util_a = self.internet.link("link-a").utilization
            if t >= self.spike_at:
                self.peak_util = max(self.peak_util, util_a)
                if (
                    util_a <= self.overload_threshold
                    and not math.isfinite(self.relief_time)
                    and t > self.spike_at + self.dt
                ):
                    self.relief_time = t - self.spike_at
            yield self.env.timeout(self.dt)
            self.fluid.advance(self.dt)

    def run(self, duration_s: float = 3600.0) -> None:
        self.env.process(self._monitor())
        if self.strategy == "k1":
            self.env.process(self._control_k1())
        else:
            self.env.process(self._control_naive())
        self.env.run(until=duration_s)


@dataclass
class E4Result:
    rows: list[tuple] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "E4 — access-link relief: selective exposure (K1) vs naive BGP re-advertisement",
            [
                "strategy",
                "ttl(s)",
                "violators",
                "time-to-relief(s)",
                "route updates",
                "dns reconfigs",
                "peak util",
            ],
        )
        for row in self.rows:
            t.add_row(*row)
        t.add_note(
            "paper: exposure relieves 'as soon as DNS starts exposing new VIPs' "
            "with infrequent route updates; re-advertising is slow and churn-heavy"
        )
        return t


def run(
    ttls: tuple[float, ...] = (30.0,),
    violator_fractions: tuple[float, ...] = (0.1,),
    duration_s: float = 2400.0,
) -> E4Result:
    result = E4Result()
    for ttl in ttls:
        for vf in violator_fractions:
            s = ExposureScenario("k1", dns_ttl_s=ttl, violator_fraction=vf)
            s.run(duration_s)
            result.rows.append(
                (
                    "K1 exposure",
                    ttl,
                    vf,
                    round(s.relief_time, 1),
                    s.bgp.log.total,
                    s.authority.weight_updates - len(s.app_vips),  # minus initial
                    round(s.peak_util, 3),
                )
            )
    s = ExposureScenario("naive")
    s.run(duration_s)
    result.rows.append(
        (
            "naive BGP",
            "-",
            "-",
            round(s.relief_time, 1),
            s.bgp.log.total,
            0,
            round(s.peak_util, 3),
        )
    )
    return result
