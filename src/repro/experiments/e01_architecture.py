"""E1 / Figure 1 — end-to-end architecture validation.

Builds the full assembly (clients -> DNS -> access links -> border routers
-> LB switches -> fabric -> pods), runs it under a Zipf + diurnal workload
with the global and pod managers active, and reports steady-state
utilizations, imbalance indices, satisfied demand, control activity and
whether every hard invariant held.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.analysis.stats import max_mean_ratio
from repro.core import MegaDataCenter, PlatformConfig
from repro.sim import RngHub
from repro.workload import WorkloadBuilder


@dataclass
class E1Result:
    dc: MegaDataCenter
    duration_s: float

    def table(self) -> Table:
        dc = self.dc
        t = Table(
            "E1 / Fig.1 — architecture steady state",
            ["component", "count", "mean util", "max util", "imbalance (max/mean)"],
        )
        links = list(dc.link_utilizations().values())
        switches = list(dc.switch_utilizations().values())
        pods = list(dc.pod_utilizations().values())
        servers = [
            s.utilization
            for m in dc.pod_managers.values()
            for s in m.pod.servers
        ]
        for name, vals in (
            ("access links", links),
            ("LB switches", switches),
            ("pods", pods),
            ("servers", servers),
        ):
            t.add_row(
                name,
                len(vals),
                float(np.mean(vals)),
                float(np.max(vals)),
                max_mean_ratio(vals),
            )
        t.add_note(f"epochs run: {dc.epochs}; sim duration: {self.duration_s:.0f}s")
        t.add_note(f"satisfied demand fraction (final): {dc.satisfied.current:.4f}")
        t.add_note(f"blackholed traffic: {dc.state.blackholed_gbps:.4f} Gbps")
        t.add_note(f"invariants hold: {dc.invariants_ok()}")
        log = dc.action_log()
        if log is not None:
            by_knob = {
                k: log.count(k) for k in ("K1", "K2", "K3", "K4", "K5", "K6")
            }
            t.add_note(f"control actions: {by_knob}")
        t.add_note(f"RIP reconfigurations: {dc.state.reconfigurations}")
        return t


def run(
    n_apps: int = 60,
    total_gbps: float = 24.0,
    n_pods: int = 4,
    servers_per_pod: int = 16,
    n_switches: int = 8,
    duration_s: float = 3600.0,
    seed: int = 0,
    obs=None,
    audit: bool = False,
    parallelism: int = 1,
) -> E1Result:
    apps = WorkloadBuilder(
        n_apps=n_apps,
        total_gbps=total_gbps,
        zipf_s=0.8,
        diurnal_fraction=0.5,
        rng_hub=RngHub(seed),
    ).build()
    dc = MegaDataCenter(
        apps,
        config=PlatformConfig(),
        n_pods=n_pods,
        servers_per_pod=servers_per_pod,
        n_switches=n_switches,
        obs=obs,
        audit=audit,
        parallelism=parallelism,
    )
    dc.run(duration_s)
    dc.close()
    return E1Result(dc=dc, duration_s=duration_s)
