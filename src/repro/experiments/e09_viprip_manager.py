"""E9 — VIP/RIP manager scalability (Sections III-C, V-A).

The global manager serializes every VIP/RIP configuration request and
"must consider all the switches" per decision.  We (a) tabulate the
analytic decision-space size (the ``L**(A*k)`` states that motivate the
hierarchy) and (b) measure the serialized manager's sustained request
throughput under a request storm, with the flat all-switches scan versus
the switch-pod hierarchy, across fabric sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table
from repro.core.sizing import vip_allocation_state_space_log10
from repro.core.switch_pods import FlatSwitchManager, SwitchPodManager
from repro.core.viprip import VipRipManager, VipRipRequest
from repro.lbswitch.addresses import PUBLIC_VIP_POOL
from repro.lbswitch.switch import LBSwitch, SwitchLimits
from repro.sim import Environment


@dataclass
class E9Row:
    n_switches: int
    selector: str
    requests: int
    makespan_s: float
    throughput_rps: float
    mean_scan: float
    state_space_log10: float


@dataclass
class E9Result:
    rows: list[E9Row] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "E9 — VIP/RIP manager throughput: flat scan vs switch-pod hierarchy",
            [
                "switches",
                "selector",
                "requests",
                "makespan(s)",
                "req/s",
                "scanned/req",
                "log10(decision space) @300K apps, k=3",
            ],
        )
        for r in self.rows:
            t.add_row(
                r.n_switches,
                r.selector,
                r.requests,
                round(r.makespan_s, 2),
                round(r.throughput_rps, 3),
                round(r.mean_scan, 1),
                round(r.state_space_log10 / 1e6, 3),
            )
        t.add_note("decision-space column is in units of 10^6 decimal digits")
        t.add_note(
            "paper: with ~400 switches the flat allocator may become a "
            "bottleneck; switch pods cut the per-decision scan from L to "
            "P + L/P"
        )
        return t


def _storm(
    n_switches: int,
    selector_kind: str,
    n_requests: int,
    scan_cost_s: float,
    reconfig_s: float,
    pod_size: int,
) -> E9Row:
    env = Environment()
    switches = [
        LBSwitch(
            f"lb-{i}", env, SwitchLimits(max_vips=10_000, max_rips=40_000)
        )
        for i in range(n_switches)
    ]
    if selector_kind == "flat":
        selector = FlatSwitchManager(switches, scan_cost_s=scan_cost_s)
    else:
        selector = SwitchPodManager(switches, pod_size=pod_size, scan_cost_s=scan_cost_s)
    mgr = VipRipManager(
        env, switches, PUBLIC_VIP_POOL(10**6), selector=selector, reconfig_s=reconfig_s
    )
    dones = [
        mgr.submit(VipRipRequest("new_vip", f"app-{i:05d}")) for i in range(n_requests)
    ]
    env.run(until=dones[-1])
    makespan = env.now
    total_vips = sum(s.num_vips for s in switches)
    assert total_vips == n_requests
    if selector_kind == "flat":
        mean_scan = n_switches
    else:
        mean_scan = selector.n_pods + pod_size
    return E9Row(
        n_switches=n_switches,
        selector=selector_kind,
        requests=n_requests,
        makespan_s=makespan,
        throughput_rps=n_requests / makespan,
        mean_scan=mean_scan,
        state_space_log10=vip_allocation_state_space_log10(300_000, n_switches, 3.0),
    )


def run(
    switch_counts: tuple[int, ...] = (64, 128, 256, 512),
    n_requests: int = 200,
    scan_cost_s: float = 2e-3,
    reconfig_s: float = 0.5,
) -> E9Result:
    result = E9Result()
    for n in switch_counts:
        pod_size = max(4, int(n**0.5))
        for kind in ("flat", "switch-pods"):
            result.rows.append(
                _storm(n, kind, n_requests, scan_cost_s, reconfig_s, pod_size)
            )
    return result
