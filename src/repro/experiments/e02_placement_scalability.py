"""E2 — placement algorithm scalability (the paper's Section I-A claim).

"the algorithm execution time increases exponentially with the increase of
the number of managed machines and needs about half minute to create
provisioning decisions for only about 7,000 servers and 17,500
applications" — we reproduce the *shape*: the centralized Tang controller's
runtime grows superlinearly with scale, while the hierarchical scheme keeps
per-pod decision time bounded (pods are solved independently — in a real
deployment, in parallel) and the distributed scheme is fastest but loses
placement quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.reporting import Table
from repro.perf.engine import PlacementEngine, PlacementTask
from repro.placement import (
    DistributedController,
    GreedyController,
    PlacementProblem,
    TangController,
    evaluate_solution,
)


def make_instance(
    n_servers: int,
    apps_per_server: float = 2.5,
    load_factor: float = 0.7,
    seed: int = 0,
) -> PlacementProblem:
    """A scalable synthetic instance mirroring the paper's server:app ratio
    (7,000 servers : 17,500 applications = 1 : 2.5)."""
    rng = np.random.default_rng(seed)
    n_apps = int(n_servers * apps_per_server)
    demands = rng.uniform(0.05, 0.6, n_apps)
    demands *= load_factor * n_servers / demands.sum()
    app_mem = rng.uniform(1.0, 4.0, n_apps)
    current = np.zeros((n_servers, n_apps), dtype=bool)
    mem_free = np.full(n_servers, 32.0)
    # Each app starts with one instance on a random feasible server.
    for a in range(n_apps):
        for s in rng.permutation(n_servers)[:4]:
            if mem_free[s] >= app_mem[a]:
                current[s, a] = True
                mem_free[s] -= app_mem[a]
                break
    return PlacementProblem(
        server_cpu=np.ones(n_servers),
        server_mem=np.full(n_servers, 32.0),
        app_cpu_demand=demands,
        app_mem=app_mem,
        current=current,
    )


def split_into_pods(problem: PlacementProblem, pod_size: int) -> list[PlacementProblem]:
    """Partition servers into pods; each app's demand goes to the pods that
    already host it (split evenly), orphan demand round-robin."""
    n = problem.n_servers
    pods = []
    bounds = list(range(0, n, pod_size)) + [n]
    n_pods = len(bounds) - 1
    hosts_per_pod = [
        problem.current[bounds[i] : bounds[i + 1], :].any(axis=0)
        for i in range(n_pods)
    ]
    coverage = np.stack(hosts_per_pod).sum(axis=0)  # pods covering each app
    for i in range(n_pods):
        lo, hi = bounds[i], bounds[i + 1]
        demand = np.where(
            coverage > 0,
            problem.app_cpu_demand * hosts_per_pod[i] / np.maximum(coverage, 1),
            0.0,
        )
        # Orphan apps (no instance anywhere) assigned round-robin by index.
        orphans = coverage == 0
        if orphans.any():
            idx = np.nonzero(orphans)[0]
            mine = idx[idx % n_pods == i]
            demand[mine] = problem.app_cpu_demand[mine]
        pods.append(
            PlacementProblem(
                server_cpu=problem.server_cpu[lo:hi],
                server_mem=problem.server_mem[lo:hi],
                app_cpu_demand=demand,
                app_mem=problem.app_mem,
                current=problem.current[lo:hi, :],
            )
        )
    return pods


@dataclass
class ScaleRow:
    n_servers: int
    n_apps: int
    tang_s: float
    tang_satisfied: float
    hier_max_pod_s: float
    hier_total_s: float
    hier_satisfied: float
    dist_s: float
    dist_satisfied: float


@dataclass
class E2Result:
    rows: list[ScaleRow] = field(default_factory=list)
    pod_size: int = 200

    def table(self) -> Table:
        t = Table(
            "E2 — placement decision time vs scale (paper: centralized ~30s @ 7k servers, superlinear)",
            [
                "servers",
                "apps",
                "tang(s)",
                "tang sat",
                "hier max-pod(s)",
                "hier total(s)",
                "hier sat",
                "dist(s)",
                "dist sat",
            ],
        )
        for r in self.rows:
            t.add_row(
                r.n_servers,
                r.n_apps,
                r.tang_s,
                r.tang_satisfied,
                r.hier_max_pod_s,
                r.hier_total_s,
                r.hier_satisfied,
                r.dist_s,
                r.dist_satisfied,
            )
        if len(self.rows) >= 2:
            first, last = self.rows[0], self.rows[-1]
            scale = last.n_servers / first.n_servers
            growth = last.tang_s / max(first.tang_s, 1e-9)
            t.add_note(
                f"tang runtime grew {growth:.1f}x over a {scale:.0f}x scale-up "
                f"(superlinear: {growth > scale}); "
                f"hierarchical per-pod time stayed ~flat "
                f"({first.hier_max_pod_s:.3f}s -> {last.hier_max_pod_s:.3f}s, pod size {self.pod_size})"
            )
        return t

    def tang_superlinear(self) -> bool:
        first, last = self.rows[0], self.rows[-1]
        return (last.tang_s / max(first.tang_s, 1e-9)) > (
            last.n_servers / first.n_servers
        )


def run(
    sizes: tuple[int, ...] = (100, 200, 400, 800),
    pod_size: int = 100,
    seed: int = 0,
    parallelism: int = 1,
    engine: Optional[PlacementEngine] = None,
) -> E2Result:
    """The scalability sweep.  The hierarchical stage's independent pod
    solves go through a :class:`PlacementEngine` (default serial; pass
    ``parallelism`` or a shared ``engine`` to fan them out — the results
    are identical either way, only the wall clock changes)."""
    result = E2Result(pod_size=pod_size)
    owns_engine = engine is None
    engine = engine or PlacementEngine(parallelism)
    try:
        for n in sizes:
            result.rows.append(_run_size(n, pod_size, seed, engine))
    finally:
        if owns_engine:
            engine.close()
    return result


def _run_size(
    n: int, pod_size: int, seed: int, engine: PlacementEngine
) -> ScaleRow:
    problem = make_instance(n, seed=seed)

    tang = TangController()
    sol_t = tang.solve(problem)
    q_t = evaluate_solution(problem, sol_t)

    pods = split_into_pods(problem, pod_size)
    tasks = [
        PlacementTask(key=f"pod-{i}", problem=p, controller=GreedyController())
        for i, p in enumerate(pods)
    ]
    pod_times, satisfied, demand = [], 0.0, 0.0
    for pod_problem, sol in zip(pods, engine.solve_batch(tasks)):
        pod_times.append(sol.wall_time_s)
        satisfied += sol.satisfied().sum()
        demand += pod_problem.total_demand

    dist = DistributedController(rng=np.random.default_rng(seed))
    sol_d = dist.solve(problem)
    q_d = evaluate_solution(problem, sol_d)

    return ScaleRow(
        n_servers=n,
        n_apps=problem.n_apps,
        tang_s=sol_t.wall_time_s,
        tang_satisfied=q_t.satisfied_fraction,
        hier_max_pod_s=max(pod_times),
        hier_total_s=sum(pod_times),
        hier_satisfied=satisfied / demand if demand else 1.0,
        dist_s=sol_d.wall_time_s,
        dist_satisfied=q_d.satisfied_fraction,
    )
