"""E10 — policy conflict and the two-LB-layer resolution (Section V-B).

We sweep how adversarially the VIPs' link bindings correlate with their
pod bindings.  At crossing = 0 the VIP on a big link serves a big pod
(aligned); at crossing = 1 every big-link VIP serves only the small pod
(the conflict scenario of Section V-B).  The single-layer architecture's
best achievable min-max utilization degrades with crossing; the two-layer
architecture is flat — at the cost of the extra demand-distribution
switches tabulated at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table
from repro.core.two_layer import TwoLayerFabric, VipBinding
from repro.lbswitch.switch import SwitchLimits


@dataclass
class E10Result:
    rows: list[tuple] = field(default_factory=list)
    overhead: dict = field(default_factory=dict)

    def table(self) -> Table:
        t = Table(
            "E10 — single-layer vs two-layer under link/pod binding conflict",
            [
                "crossing",
                "single worst util",
                "single link util",
                "single pod util",
                "two-layer worst util",
            ],
        )
        for row in self.rows:
            t.add_row(*row)
        t.add_note(
            "switch cost @300K apps (3 ext VIPs, 2 m-VIPs, 20 RIPs per app): "
            f"single={self.overhead['single_layer_switches']}, "
            f"two-layer={self.overhead['two_layer_switches']} "
            f"(x{self.overhead['overhead_ratio']:.2f})"
        )
        return t


def make_bindings(crossing: float, n_vips_per_side: int = 4) -> list[VipBinding]:
    """VIPs on a big and a small link; a ``crossing`` fraction of the
    big-link VIPs are wired to the small pod (and vice versa)."""
    bindings = []
    n_crossed = round(crossing * n_vips_per_side)
    for i in range(n_vips_per_side):
        crossed = i < n_crossed
        bindings.append(
            VipBinding(
                f"big-{i}",
                "link-big",
                {"pod-small": 1.0} if crossed else {"pod-big": 1.0},
            )
        )
        bindings.append(
            VipBinding(
                f"small-{i}",
                "link-small",
                {"pod-big": 1.0} if crossed else {"pod-small": 1.0},
            )
        )
    return bindings


def run(
    crossings: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    demand_gbps: float = 8.0,
) -> E10Result:
    fabric = TwoLayerFabric(
        link_capacity_gbps={"link-big": 10.0, "link-small": 2.0},
        pod_capacity_gbps={"pod-big": 10.0, "pod-small": 2.0},
    )
    result = E10Result()
    vip_links = {}
    for crossing in crossings:
        bindings = make_bindings(crossing)
        single = fabric.solve_single_layer(bindings, demand_gbps)
        vip_links = {b.vip: b.link for b in bindings}
        two = fabric.solve_two_layer(vip_links, demand_gbps)
        result.rows.append(
            (
                crossing,
                round(single.worst, 3),
                round(single.max_link_utilization, 3),
                round(single.max_pod_utilization, 3),
                round(two.worst, 3),
            )
        )
    result.overhead = TwoLayerFabric.switch_overhead(
        n_apps=300_000,
        external_vips_per_app=3.0,
        m_vips_per_app=2.0,
        rips_per_app=20.0,
        limits=SwitchLimits(),
    )
    return result


# ----------------------------------------------------- dynamic counterpart


class TwoLayerScenario:
    """Closed-loop simulation of the Section V-B conflict.

    One hot application with four external VIPs over a big and a small
    access link, serving a big and a small pod, with fully crossed
    bindings.  In single-layer mode one DNS-exposure controller must chase
    both objectives through one weight vector; in two-layer mode the
    exposure controller owns the links and an independent m-VIP RIP-weight
    controller (K6 on the load-balancing layer) owns the pods.
    """

    def __init__(
        self,
        two_layer: bool,
        demand_gbps: float = 8.0,
        link_caps: tuple[float, float] = (10.0, 2.0),
        pod_caps: tuple[float, float] = (10.0, 2.0),
        dns_ttl_s: float = 30.0,
        control_period_s: float = 60.0,
        dt: float = 10.0,
    ):
        from repro.dns.authority import AuthoritativeDNS
        from repro.dns.population import FluidDNSModel
        from repro.sim import Environment

        self.two_layer = two_layer
        self.demand = demand_gbps
        self.links = {"link-big": link_caps[0], "link-small": link_caps[1]}
        self.pods = {"pod-big": pod_caps[0], "pod-small": pod_caps[1]}
        self.control_period_s = control_period_s
        self.dt = dt
        self.env = Environment()
        self.authority = AuthoritativeDNS(self.env, dns_ttl_s)
        self.fluid = FluidDNSModel(self.authority, violator_fraction=0.1)

        # Four external VIPs, fully crossed: big-link VIPs -> small pod.
        self.vip_link = {
            "v-big-0": "link-big",
            "v-big-1": "link-big",
            "v-small-0": "link-small",
            "v-small-1": "link-small",
        }
        if two_layer:
            # Every external VIP maps to the same m-VIP set; the m-VIP
            # layer's RIP weights choose the pod split independently.
            self.mvip_pod_weight = {"pod-big": 1.0, "pod-small": 1.0}
            self.vip_pod = None
        else:
            self.mvip_pod_weight = None
            self.vip_pod = {
                "v-big-0": "pod-small",
                "v-big-1": "pod-small",
                "v-small-0": "pod-big",
                "v-small-1": "pod-big",
            }
        self.authority.configure("app", {v: 1.0 for v in self.vip_link})
        self.fluid.ensure_app("app")
        self._link_util_samples: list[float] = []
        self._pod_util_samples: list[float] = []

    # -- data plane ---------------------------------------------------------
    def _loads(self) -> tuple[dict, dict]:
        shares = self.fluid.shares("app")
        link_loads = {l: 0.0 for l in self.links}
        pod_loads = {p: 0.0 for p in self.pods}
        for vip, share in shares.items():
            traffic = self.demand * share
            link_loads[self.vip_link[vip]] += traffic
            if self.two_layer:
                total_w = sum(self.mvip_pod_weight.values())
                for pod, w in self.mvip_pod_weight.items():
                    pod_loads[pod] += traffic * w / total_w
            else:
                pod_loads[self.vip_pod[vip]] += traffic
        return link_loads, pod_loads

    # -- controllers ----------------------------------------------------------
    def _control(self):
        while True:
            yield self.env.timeout(self.control_period_s)
            # Link side (K1): expose proportional to link headroom, using
            # the settled view (current authority weights).
            weights = {}
            per_link_vips: dict[str, list[str]] = {}
            for vip, link in self.vip_link.items():
                per_link_vips.setdefault(link, []).append(vip)
            for link, vips in per_link_vips.items():
                for vip in vips:
                    weights[vip] = self.links[link] / len(vips)
            if not self.two_layer:
                # The single weight vector must also consider pods: blend
                # in pod headroom per VIP (the conflict in action).
                for vip in weights:
                    pod = self.vip_pod[vip]
                    weights[vip] *= self.pods[pod] / sum(self.pods.values())
            self.authority.configure("app", weights)
            if self.two_layer:
                # Pod side (K6 at the m-VIP layer): capacity-proportional.
                self.mvip_pod_weight = dict(self.pods)

    def _monitor(self):
        while True:
            yield self.env.timeout(self.dt)
            self.fluid.advance(self.dt)
            link_loads, pod_loads = self._loads()
            self._link_util_samples.append(
                max(link_loads[l] / self.links[l] for l in self.links)
            )
            self._pod_util_samples.append(
                max(pod_loads[p] / self.pods[p] for p in self.pods)
            )

    def run(self, duration_s: float = 3600.0, warmup_s: float = 1200.0):
        self.env.process(self._monitor())
        self.env.process(self._control())
        self.env.run(until=duration_s)
        skip = int(warmup_s / self.dt)
        link = self._link_util_samples[skip:]
        pod = self._pod_util_samples[skip:]
        return (
            sum(link) / len(link),
            sum(pod) / len(pod),
        )


def run_dynamic(duration_s: float = 3600.0):
    """Closed-loop comparison rows: (mode, settled max link util,
    settled max pod util)."""
    rows = []
    for two_layer in (False, True):
        scenario = TwoLayerScenario(two_layer=two_layer)
        link_util, pod_util = scenario.run(duration_s)
        rows.append(
            (
                "two-layer (decoupled)" if two_layer else "single-layer",
                round(link_util, 3),
                round(pod_util, 3),
            )
        )
    return rows
