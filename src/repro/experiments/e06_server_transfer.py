"""E6 — server transfer between pods and elephant-pod avoidance (IV-C).

A single application's demand steps up far beyond its pod's capacity.
Three platform configurations:

* **no-GM** — nothing reacts; the pod stays overloaded.
* **K3-uncapped** — the global manager feeds the hot pod servers from
  donors with no size cap: demand is met, but the pod balloons and its
  manager's (Tang) decision time grows with it — the elephant.
* **capped ladder** — the pod size cap forces relief through the cheaper
  knobs (replication into other pods): demand met *and* decision time
  bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import Table
from repro.core import MegaDataCenter, PlatformConfig
from repro.core.knobs.ladder import KnobLadder
from repro.placement import TangController
from repro.workload.apps import AppSpec
from repro.workload.demand import ConstantDemand, StepDemand


def build_apps(n_apps: int = 12, base_gbps: float = 0.8, hot_after_gbps: float = 20.0):
    """One app starts tiny (so it bootstraps into a single pod) and then
    steps to far more than one pod's capacity."""
    apps = []
    for i in range(n_apps):
        if i == 0:
            demand = StepDemand(before=0.2, after=hot_after_gbps, at=600.0)
        else:
            demand = ConstantDemand(base_gbps)
        apps.append(AppSpec(f"app-{i:02d}", 1.0 / n_apps, demand, n_vips=2))
    return apps


@dataclass
class E6Row:
    config: str
    satisfied_final: float
    hot_pod_servers: int
    hot_pod_vms: int
    max_decision_ms: float
    k3_actions: int
    k4_actions: int


@dataclass
class E6Result:
    rows: list[E6Row] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "E6 — pod relief by server transfer (K3) and the elephant-pod trade-off",
            [
                "config",
                "satisfied",
                "hot-pod servers",
                "hot-pod VMs",
                "max pod decision (ms)",
                "K3 actions",
                "K4 actions",
            ],
        )
        for r in self.rows:
            t.add_row(
                r.config,
                r.satisfied_final,
                r.hot_pod_servers,
                r.hot_pod_vms,
                r.max_decision_ms,
                r.k3_actions,
                r.k4_actions,
            )
        t.add_note(
            "paper: transfers relieve overloaded pods, but the manager 'must "
            "avoid elephant pods' whose decision space slows the pod manager"
        )
        return t


def _run_one(
    config_name: str,
    ladder,
    enable_gm: bool,
    pod_max_servers: int,
    duration_s: float,
) -> E6Row:
    apps = build_apps()
    dc = MegaDataCenter(
        apps,
        config=PlatformConfig(),
        n_pods=6,
        servers_per_pod=8,
        n_switches=4,
        pod_controller_factory=lambda: TangController(),
        enable_global_manager=enable_gm,
        pod_max_servers=pod_max_servers,
        pod_max_vms=10_000,
    )
    if enable_gm and ladder is not None:
        dc.global_manager.ladder = ladder
    dc.run(duration_s)
    # The hot app covers (at least) the pod it bootstrapped into; report
    # the largest pod, which is where growth concentrates.  Decision time:
    # mean over the final epochs of the largest pod's reports (first-epoch
    # wall times include interpreter warm-up noise).
    biggest = max(dc.pod_managers.values(), key=lambda m: m.pod.n_servers)
    tail = dc.reports_history[-8:]
    times = [
        r.decision_time_s
        for epoch in tail
        for r in epoch
        if r.pod == biggest.pod.name
    ]
    decision_ms = 1000.0 * float(np.mean(times)) if times else 0.0
    log = dc.action_log()
    return E6Row(
        config=config_name,
        satisfied_final=round(dc.satisfied.current, 4),
        hot_pod_servers=biggest.pod.n_servers,
        hot_pod_vms=biggest.pod.n_vms,
        max_decision_ms=round(decision_ms, 2),
        k3_actions=log.count("K3") if log else 0,
        k4_actions=log.count("K4") if log else 0,
    )


def run(duration_s: float = 3600.0) -> E6Result:
    result = E6Result()
    result.rows.append(
        _run_one("no-GM", None, enable_gm=False, pod_max_servers=100, duration_s=duration_s)
    )
    result.rows.append(
        _run_one(
            "K3-uncapped (elephant)",
            KnobLadder(order=("K3",)),
            enable_gm=True,
            pod_max_servers=100,
            duration_s=duration_s,
        )
    )
    result.rows.append(
        _run_one(
            "capped ladder (K6->K5->K4->K3)",
            KnobLadder(),
            enable_gm=True,
            pod_max_servers=12,
            duration_s=duration_s,
        )
    )
    return result
