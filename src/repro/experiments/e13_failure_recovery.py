"""E13 — failure recovery under the paper's knobs.

The scripted acceptance scenario: during steady load, one LB switch dies
and two servers (in different pods) crash; everything is repaired ten
minutes later.  The management stack must degrade gracefully using the
same knobs it uses for load management:

* switch failure -> K2 VIP transfer re-homes every victim VIP onto
  healthy switches (with retry/backoff), K1 keeps DNS honest meanwhile;
* server crash -> the pod manager re-places the displaced demand
  in-pod, spilling to a K3 server transfer when the pod is short;
* (optionally, with ``fail_link=True``) an access-link failure ->
  K1 selective exposure steers clients away from the dead router.

We report MTTR per fault class (time from injection to the completed
degradation response), demand dropped while traffic black-holed, and the
reconfiguration retries spent — and we assert the recovery end-state:
no VIP left homed on a failed switch mid-outage, no serving RIP on a
crashed server, platform invariants intact at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.reporting import Table
from repro.core.config import PlatformConfig
from repro.core.datacenter import MegaDataCenter
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    RecoveryMonitor,
)
from repro.sim.rng import RngHub
from repro.workload.generator import WorkloadBuilder

#: Shortest run that contains the whole scripted scenario: last repair at
#: t=960 plus one epoch of post-repair settling.
MIN_DURATION_S = 1020.0


@dataclass
class E13Result:
    monitor: RecoveryMonitor
    schedule: FaultSchedule
    failed_switch: str
    crashed_servers: list[str]
    #: VIPs still homed on a failed switch at the mid-outage checkpoint.
    vips_on_failed_mid: int
    #: Serving RIPs resident on a crashed server at the checkpoint.
    rips_on_crashed_mid: int
    satisfied_mid: float
    satisfied_end: float
    reconfig_retries: int
    invariants_ok: bool
    mttr_by_class: dict[str, float] = field(default_factory=dict)

    @property
    def recovered(self) -> bool:
        """The acceptance predicate for the scripted scenario."""
        return (
            self.vips_on_failed_mid == 0
            and self.rips_on_crashed_mid == 0
            and self.invariants_ok
            and all(m > 0 for m in self.mttr_by_class.values())
            and len(self.mttr_by_class) >= 2  # switch + server responded
        )

    def table(self) -> Table:
        t = self.monitor.table(self.reconfig_retries)
        t.title = "E13 — failure recovery (scripted: 1 switch + 2 servers)"
        t.add_note(
            f"failed switch {self.failed_switch}: "
            f"{self.vips_on_failed_mid} VIPs still homed there mid-outage"
        )
        t.add_note(
            f"crashed servers {', '.join(self.crashed_servers)}: "
            f"{self.rips_on_crashed_mid} serving RIPs left there mid-outage"
        )
        t.add_note(
            f"satisfied demand mid-outage {self.satisfied_mid:.1%}, "
            f"after repair {self.satisfied_end:.1%}"
        )
        t.add_note(f"invariants hold: {self.invariants_ok}")
        t.add_note(f"scenario recovered: {self.recovered}")
        return t


def run(
    seed: int = 42,
    duration_s: float = 3600.0,
    serialized_reconfig: bool = False,
    fail_link: bool = False,
) -> E13Result:
    """Run the scripted scenario; *seed* picks workload and crash victims."""
    if duration_s < MIN_DURATION_S:
        raise ValueError(
            f"duration_s={duration_s:g} too short: the scripted scenario "
            f"(faults at t=300..960 plus responses) needs >= {MIN_DURATION_S:g} s"
        )
    hub = RngHub(seed)
    apps = WorkloadBuilder(
        n_apps=12,
        total_gbps=6.0,
        diurnal_fraction=0.0,  # steady load: recovery, not demand, moves
        rng_hub=hub.spawn("workload"),
    ).build()
    dc = MegaDataCenter(
        apps,
        config=PlatformConfig(),
        n_pods=3,
        servers_per_pod=8,
        n_switches=4,
        serialized_reconfig=serialized_reconfig,
    )

    # Victims: the switch carrying the most VIPs, and one busy server in
    # each of two different pods (seed-dependent but deterministic).
    switch = max(dc.switches.values(), key=lambda s: (s.num_vips, s.name)).name
    rng = hub.stream("victims")
    servers = []
    for pod_name in sorted(dc.pod_managers)[:2]:
        pod = dc.pod_managers[pod_name].pod
        busy = sorted(s.name for s in pod.servers if s.vms)
        pool = busy if busy else sorted(s.name for s in pod.servers)
        servers.append(pool[int(rng.integers(0, len(pool)))])

    t0, outage_s = 300.0, 600.0
    schedule = FaultSchedule.scripted_basic(switch, servers, t0=t0, outage_s=outage_s)
    if fail_link:
        link = sorted(dc.internet.links)[0]
        schedule = FaultSchedule(
            list(schedule)
            + [
                # Fail between the crashes, repair with everything else.
                FaultEvent(t0 + 45.0, FaultKind.LINK_DOWN, link),
                FaultEvent(t0 + outage_s, FaultKind.LINK_UP, link),
            ]
        )
    monitor = RecoveryMonitor()
    injector = FaultInjector(dc, schedule, monitor)

    # Mid-outage checkpoint: faults injected and responses done, repairs
    # still in the future.
    dc.run(t0 + outage_s - 30.0)
    vips_on_failed_mid = sum(
        1
        for info in dc.state.vips.values()
        if info.switch in dc.state.failed_switches
    )
    crashed = set(servers)
    rips_on_crashed_mid = sum(
        1 for info in dc.state.rips.values() if info.vm.host in crashed
    )
    satisfied_mid = dc.satisfied.current

    dc.run(duration_s - dc.env.now)
    assert injector.finished

    mttr = {}
    for cls_name in ("server", "switch", "link"):
        tally = monitor.mttr(cls_name)
        if tally is not None and tally.count:
            mttr[cls_name] = tally.mean
    return E13Result(
        monitor=monitor,
        schedule=schedule,
        failed_switch=switch,
        crashed_servers=servers,
        vips_on_failed_mid=vips_on_failed_mid,
        rips_on_crashed_mid=rips_on_crashed_mid,
        satisfied_mid=satisfied_mid,
        satisfied_end=dc.satisfied.current,
        reconfig_retries=dc.reconfig_retries,
        invariants_ok=dc.invariants_ok(),
        mttr_by_class=mttr,
    )
