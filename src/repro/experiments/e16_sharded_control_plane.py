"""E16 — sharded VIP/RIP control plane: throughput, conflicts, convergence.

The paper's Section III-C manager serializes *every* reconfiguration
through one priority queue; PR 6/7 measured that queue as the
architectural bottleneck.  This experiment shards it
(:mod:`repro.controlplane.sharding`) and measures three things:

* **Throughput scaling** — a reconfiguration storm drained by 1, 2 and 4
  shards.  Shard 1 *is* the serialized baseline; each extra shard is an
  independent serial queue over a disjoint switch slice, so completed
  requests per second should rise monotonically with shard count.
* **Conflict rate under chaos** — a seeded schedule of per-shard crashes
  and shard<->shard partitions, with requests still flowing.  Emergency
  handoffs under unreachable owners create conflicting epoch-fenced
  claims; the run counts them and the rollbacks that resolve them.
* **Convergence** — after the chaos quiesces (partitions healed, shards
  recovered), how many anti-entropy gossip rounds until the six-way
  drift report (vip_missing / vip_misplaced / vip_duplicate /
  rip_missing / rip_orphaned / index_stale) is clean.

A final integrated case runs a 4-shard :class:`MegaDataCenter` under a
fault schedule mixing ``manager_crash`` of individual shards with
``shard_partition`` faults, and requires the reconciler *and* the online
:class:`~repro.obs.audit.InvariantAuditor` to come back clean at
quiescence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.reporting import Table
from repro.controlplane.sharding import ShardedControlPlane
from repro.core.config import PlatformConfig
from repro.core.datacenter import MegaDataCenter
from repro.core.viprip import VipRipRequest
from repro.faults import FaultInjector, FaultSchedule, RecoveryMonitor
from repro.lbswitch.addresses import PUBLIC_VIP_POOL
from repro.lbswitch.switch import LBSwitch, SwitchLimits
from repro.sim.core import Environment
from repro.sim.rng import RngHub
from repro.workload.generator import WorkloadBuilder

DEFAULT_SHARDS = (1, 2, 4)


def _fleet(env: Environment, n_switches: int) -> list[LBSwitch]:
    limits = SwitchLimits(max_vips=4000, max_rips=16000)
    return [LBSwitch(f"lb-{i:02d}", env, limits) for i in range(n_switches)]


def _build_plane(
    n_shards: int, n_switches: int, reconfig_s: float, gossip_interval_s: float = 0.0
) -> tuple[Environment, ShardedControlPlane]:
    env = Environment()
    plane = ShardedControlPlane(
        env,
        _fleet(env, n_switches),
        PUBLIC_VIP_POOL(10**6),
        n_shards,
        reconfig_s=reconfig_s,
        gossip_interval_s=gossip_interval_s,
    )
    return env, plane


# ---------------------------------------------------------------- phase A
@dataclass
class ThroughputCase:
    """One shard count draining the same reconfiguration storm."""

    n_shards: int
    n_requests: int
    makespan_s: float
    throughput_rps: float
    #: Completed / submitted (loss-free storms complete everything).
    completed: int
    speedup_vs_serial: float = 1.0


def _throughput_case(
    n_shards: int,
    n_requests: int,
    n_apps: int,
    n_switches: int,
    reconfig_s: float,
) -> ThroughputCase:
    env, plane = _build_plane(n_shards, n_switches, reconfig_s)
    for i in range(n_requests):
        plane.submit(VipRipRequest("new_vip", f"app-{i % n_apps:04d}"))
    env.run()
    makespan = env.now
    return ThroughputCase(
        n_shards=n_shards,
        n_requests=n_requests,
        makespan_s=makespan,
        throughput_rps=n_requests / makespan if makespan > 0 else 0.0,
        completed=plane.processed,
    )


# ---------------------------------------------------------------- phase B
@dataclass
class ChaosCase:
    """Standalone chaos: crashes + partitions against flowing requests."""

    n_shards: int
    crashes: int
    partitions: int
    handoffs: int
    conflicts: int
    rollbacks: int
    #: Requests completed out of submitted (crashes may drop queued work).
    completed: int
    submitted: int
    lost: int
    #: Gossip rounds to a clean six-way drift report after quiescence.
    convergence_rounds: Optional[int]
    final_drift: dict = field(default_factory=dict)

    @property
    def converged(self) -> bool:
        return self.convergence_rounds is not None and not any(
            self.final_drift.values()
        )


def _chaos_case(
    seed: int,
    n_shards: int,
    n_requests: int,
    n_apps: int,
    n_switches: int,
    reconfig_s: float,
) -> ChaosCase:
    env, plane = _build_plane(n_shards, n_switches, reconfig_s)
    rng = RngHub(seed).stream("e16-chaos", n_shards)

    submitted = 0
    partitions = 0

    def load():
        nonlocal submitted
        for i in range(n_requests):
            app = f"app-{i % n_apps:04d}"
            if i % 3 == 0 and i > 0:
                plane.submit(VipRipRequest("new_rip", app, rip=f"10.9.{i % 256}.{i // 256}"))
            else:
                plane.submit(VipRipRequest("new_vip", app))
            submitted += 1
            yield env.timeout(reconfig_s / 2.0)

    def chaos():
        nonlocal partitions
        # Partition a random pair, crash a random shard, heal/recover —
        # twice, with request load flowing throughout.
        for _ in range(2):
            yield env.timeout(float(rng.uniform(5.0, 15.0)))
            if n_shards > 1:
                i, j = sorted(rng.choice(n_shards, size=2, replace=False).tolist())
                if plane.partition(i, j):
                    partitions += 1
            victim = int(rng.integers(0, n_shards))
            yield env.timeout(float(rng.uniform(5.0, 15.0)))
            plane.crash(victim)
            yield env.timeout(float(rng.uniform(10.0, 25.0)))
            yield from plane.recover()
            plane.heal_all()

    env.process(load())
    env.process(chaos())
    env.run()
    rounds = plane.converge(max_rounds=4 * n_shards + 8)
    return ChaosCase(
        n_shards=n_shards,
        crashes=plane.crashes,
        partitions=partitions,
        handoffs=plane.handoffs,
        conflicts=plane.conflicts,
        rollbacks=plane.rollbacks,
        completed=plane.processed,
        submitted=submitted,
        lost=plane.lost,
        convergence_rounds=rounds,
        final_drift=plane.drift_report().as_dict(),
    )


# ---------------------------------------------------------------- phase C
@dataclass
class IntegratedCase:
    """Full MegaDataCenter on a 4-shard plane under mixed faults."""

    n_shards: int
    manager_crashes: int
    handoffs: int
    conflicts: int
    gossip_rounds: int
    reconciler_clean: bool
    plane_drift: dict = field(default_factory=dict)
    auditor_violations: int = 0
    mttr_manager_s: float = 0.0

    @property
    def clean(self) -> bool:
        return (
            self.reconciler_clean
            and self.auditor_violations == 0
            and not any(self.plane_drift.values())
        )


def _integrated_case(seed: int, n_shards: int = 4) -> IntegratedCase:
    from repro.obs import Observability

    hub = RngHub(seed)
    apps = WorkloadBuilder(
        n_apps=12, total_gbps=6.0, diurnal_fraction=0.0, rng_hub=hub.spawn("workload")
    ).build()
    obs = Observability()
    dc = MegaDataCenter(
        apps,
        config=PlatformConfig(),
        n_pods=2,
        servers_per_pod=8,
        n_switches=2 * n_shards,
        control_plane_shards=n_shards,
        obs=obs,
        audit=True,
    )
    schedule = FaultSchedule.from_events(
        [
            (120.0, "shard_partition", "shard-0:shard-2"),
            (150.0, "manager_crash", "shard-1"),
            (240.0, "manager_crash", "shard-3"),
            (360.0, "shard_heal", "shard-0:shard-2"),
            (420.0, "switch_fail", "lb-0"),
            (700.0, "switch_recover", "lb-0"),
        ]
    )
    monitor = RecoveryMonitor()
    injector = FaultInjector(dc, schedule, monitor)
    dc.run(1100.0)
    assert injector.finished
    plane = dc.viprip
    plane.converge()
    final = dc.reconciler.run_pass()
    tally = monitor.mttr("manager")
    case = IntegratedCase(
        n_shards=n_shards,
        manager_crashes=dc.manager_crashes,
        handoffs=plane.handoffs,
        conflicts=plane.conflicts,
        gossip_rounds=plane.gossip_rounds,
        reconciler_clean=final.clean,
        plane_drift=plane.drift_report().as_dict(),
        auditor_violations=len(dc.auditor.violations),
        mttr_manager_s=tally.mean if tally is not None and tally.count else 0.0,
    )
    dc.close()
    obs.close()
    return case


# ------------------------------------------------------------------ result
@dataclass
class E16Result:
    throughput: list[ThroughputCase] = field(default_factory=list)
    chaos: list[ChaosCase] = field(default_factory=list)
    integrated: Optional[IntegratedCase] = None

    @property
    def throughput_monotonic(self) -> bool:
        """Completed-requests-per-second rises with shard count."""
        rates = [c.throughput_rps for c in sorted(self.throughput, key=lambda c: c.n_shards)]
        return all(b > a for a, b in zip(rates, rates[1:]))

    @property
    def accepted(self) -> bool:
        return (
            self.throughput_monotonic
            and all(c.converged for c in self.chaos)
            and all(c.completed == c.submitted - c.lost for c in self.chaos)
            and self.integrated is not None
            and self.integrated.clean
        )

    def table(self) -> Table:
        t = Table(
            "E16 — sharded control plane: throughput / chaos / convergence",
            [
                "shards",
                "storm rps",
                "speedup",
                "chaos conflicts",
                "rollbacks",
                "handoffs",
                "conv rounds",
                "drift clean",
            ],
        )
        chaos_by_n = {c.n_shards: c for c in self.chaos}
        for tc in sorted(self.throughput, key=lambda c: c.n_shards):
            cc = chaos_by_n.get(tc.n_shards)
            t.add_row(
                tc.n_shards,
                round(tc.throughput_rps, 2),
                round(tc.speedup_vs_serial, 2),
                cc.conflicts if cc else "-",
                cc.rollbacks if cc else "-",
                cc.handoffs if cc else "-",
                cc.convergence_rounds if cc else "-",
                (not any(cc.final_drift.values())) if cc else "-",
            )
        t.add_note("shards=1 is the serialized Section III-C baseline")
        if self.integrated is not None:
            ic = self.integrated
            t.add_note(
                f"integrated 4-shard run: {ic.manager_crashes} shard crashes, "
                f"{ic.conflicts} conflicts, reconciler clean={ic.reconciler_clean}, "
                f"auditor violations={ic.auditor_violations}"
            )
        t.add_note(f"throughput monotonic 1->{max((c.n_shards for c in self.throughput), default=0)} shards: {self.throughput_monotonic}")
        t.add_note(f"accepted: {self.accepted}")
        return t


def run(
    seed: int = 0,
    shards: tuple[int, ...] = DEFAULT_SHARDS,
    n_requests: int = 240,
    n_apps: int = 64,
    n_switches: int = 8,
    reconfig_s: float = 0.5,
    integrated: bool = True,
) -> E16Result:
    """Run the three phases; ``integrated=False`` skips the (slower)
    MegaDataCenter case for quick sweeps."""
    result = E16Result()
    for n in shards:
        result.throughput.append(
            _throughput_case(n, n_requests, n_apps, n_switches, reconfig_s)
        )
    serial = next((c for c in result.throughput if c.n_shards == 1), None)
    if serial is not None and serial.throughput_rps > 0:
        for c in result.throughput:
            c.speedup_vs_serial = c.throughput_rps / serial.throughput_rps
    for n in shards:
        result.chaos.append(
            _chaos_case(seed, n, n_requests // 2, n_apps, n_switches, reconfig_s)
        )
    if integrated:
        result.integrated = _integrated_case(seed)
    return result
