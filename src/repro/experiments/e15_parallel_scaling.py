"""E15 — parallel pod-epoch scaling (pods x workers sweep).

The paper's pods are "independently managed" (Section III-A), which makes
the per-epoch placement solves embarrassingly parallel.  This experiment
sweeps pod count x engine worker count over drifting-demand epochs and
reports epoch wall time, speedup vs the serial engine, and whether the
parallel placements are byte-identical to serial (they must be — the
engine's determinism contract).

Speedups track ``min(pods, workers, cores)``; on a single-core host every
parallel row is a slowdown (process overhead with no concurrency), which
is recorded honestly — the ``identical`` column is the correctness claim,
the speedup column is hardware-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import os

from repro.analysis.reporting import Table
from repro.perf.bench import _demand_sequence, _run_pod_epochs
from repro.perf.engine import PlacementEngine


@dataclass
class E15Row:
    pods: int
    servers: int
    workers: int
    epochs: int
    wall_s: float
    epoch_s: float
    speedup: float
    identical: bool
    #: Tasks shipped as demand-only deltas vs full problems, and the
    #: logical payload bytes each way — the knob that makes parallelism
    #: pay: after the first epoch only the demand vector crosses the
    #: process boundary.
    delta_tasks: int = 0
    full_tasks: int = 0
    delta_kb: float = 0.0
    full_kb: float = 0.0


@dataclass
class E15Result:
    rows: list[E15Row] = field(default_factory=list)
    cpu_count: int = 1

    def table(self) -> Table:
        t = Table(
            "E15 — parallel pod-epoch scaling (engine workers vs serial)",
            [
                "pods",
                "servers",
                "workers",
                "epochs",
                "wall(s)",
                "epoch(s)",
                "speedup",
                "identical",
                "delta/full",
                "shipped(KB)",
            ],
        )
        for r in self.rows:
            t.add_row(
                r.pods,
                r.servers,
                r.workers,
                r.epochs,
                round(r.wall_s, 3),
                round(r.epoch_s, 3),
                round(r.speedup, 2),
                r.identical,
                f"{r.delta_tasks}/{r.full_tasks}",
                f"{r.delta_kb:.1f}+{r.full_kb:.1f}",
            )
        t.add_note(
            f"host cpu_count={self.cpu_count}; speedup tracks "
            "min(pods, workers, cores) — rows with workers > cores measure "
            "pool overhead, not parallelism"
        )
        t.add_note(
            "delta/full = tasks shipped as demand-only deltas vs full "
            "problems; shipped(KB) = delta+full payload bytes (pods stay "
            "worker-resident, so steady-state epochs ship only demand)"
        )
        return t

    def all_identical(self) -> bool:
        return all(r.identical for r in self.rows)


def run(
    pod_counts: tuple[int, ...] = (4, 8),
    workers_list: tuple[int, ...] = (1, 2, 4),
    pod_size: int = 20,
    epochs: int = 2,
    seed: int = 0,
) -> E15Result:
    from repro.experiments.e02_placement_scalability import (
        make_instance,
        split_into_pods,
    )

    result = E15Result(cpu_count=os.cpu_count() or 1)
    for n_pods in pod_counts:
        n_servers = n_pods * pod_size
        base = make_instance(n_servers, seed=seed)
        pods = split_into_pods(base, pod_size)
        demand_seq = _demand_sequence(base, epochs, seed)
        serial_wall, serial_sigs = None, None
        for workers in workers_list:
            with PlacementEngine(workers) as engine:
                wall, sigs, stats = _run_pod_epochs(base, pods, demand_seq, engine)
            if workers == 1 or serial_wall is None:
                serial_wall, serial_sigs = wall, sigs
            result.rows.append(
                E15Row(
                    pods=len(pods),
                    servers=n_servers,
                    workers=workers,
                    epochs=epochs,
                    wall_s=wall,
                    epoch_s=wall / epochs,
                    speedup=serial_wall / max(wall, 1e-9),
                    identical=sigs == serial_sigs,
                    delta_tasks=stats["delta_tasks"],
                    full_tasks=stats["full_tasks"],
                    delta_kb=stats["bytes_shipped_delta"] / 1024.0,
                    full_kb=stats["bytes_shipped_full"] / 1024.0,
                )
            )
    return result


def trace_digest(
    workers: int,
    n_pods: int = 4,
    pod_size: int = 20,
    epochs: int = 3,
    seed: int = 0,
) -> str:
    """Digest of the E15 workload's trace at *workers* — the golden-trace
    witness that pool.dispatch/pool.merge events (epoch identity, delta vs
    full classification, payload sizes, solution CRCs) are byte-identical
    across engine parallelism levels."""
    from repro.experiments.e02_placement_scalability import (
        make_instance,
        split_into_pods,
    )
    from repro.obs import TraceBus

    base = make_instance(n_pods * pod_size, seed=seed)
    pods = split_into_pods(base, pod_size)
    demand_seq = _demand_sequence(base, epochs, seed)
    bus = TraceBus(keep_events=False)
    with PlacementEngine(workers) as engine:
        engine.trace = bus
        _run_pod_epochs(base, pods, demand_seq, engine)
    return bus.digest
