"""E17 — the paper's mega scale through the bounded-memory epoch driver.

Section I sizes one mega data center at ~300,000 servers hosting ~300,000
applications with ~20 VM instances each (~6M VMs).  Every earlier
experiment ran at a fraction of that because platform state was per-object
Python records and demand a fully materialized matrix.  E17 runs the real
numbers: columnar CSR pod shards (:mod:`repro.core.columnar`), streaming
demand chunks (:mod:`repro.workload.streaming`) and the worker-resident
delta-shipping engine, composed by :class:`repro.core.mega.MegaScaleDriver`.

The default invocation (``repro run e17``) uses the 1/10 "quick" scale so
the experiment suite stays minutes-not-hours; ``run(full=True)`` — what
``repro mega`` without ``--quick`` executes through the bench lane — is
the paper-size run, which finishes in well under a minute and under 1 GB
of RSS on a current laptop (the acceptance budget is 8 GB).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.reporting import Table
from repro.core.mega import MegaConfig, MegaScaleDriver


@dataclass
class E17Row:
    epoch: int
    wall_s: float
    vms: int
    demand_cpu: float
    satisfied_fraction: float
    changes: int
    delta_tasks: int
    full_tasks: int
    shipped_mb: float
    peak_rss_mb: float


@dataclass
class E17Result:
    rows: list[E17Row] = field(default_factory=list)
    config: MegaConfig = field(default_factory=MegaConfig.quick)
    bootstrap_wall_s: float = 0.0
    cpu_count: int = 1

    def table(self) -> Table:
        cfg = self.config
        t = Table(
            "E17 — mega scale: "
            f"{cfg.n_servers} servers / {cfg.n_apps} apps "
            f"({cfg.n_pods} pods, workers={cfg.parallelism})",
            [
                "epoch",
                "wall(s)",
                "vms",
                "demand(cpu)",
                "satisfied",
                "changes",
                "delta/full",
                "shipped(MB)",
                "rss(MB)",
            ],
        )
        for r in self.rows:
            t.add_row(
                r.epoch,
                round(r.wall_s, 3),
                r.vms,
                round(r.demand_cpu, 1),
                f"{r.satisfied_fraction:.4f}",
                r.changes,
                f"{r.delta_tasks}/{r.full_tasks}",
                round(r.shipped_mb, 1),
                round(r.peak_rss_mb, 1),
            )
        t.add_note(
            f"bootstrap {self.bootstrap_wall_s:.2f}s; host "
            f"cpu_count={self.cpu_count}; epoch 0 ships every pod's full "
            "problem, later epochs ship demand-only deltas to the "
            "worker-resident sparse controllers"
        )
        t.add_note(
            "paper Section I: ~300k servers, ~300k apps, ~20 VMs/app "
            "(~6M VMs) per mega data center; rss(MB) is the process "
            "high-water mark (acceptance budget 8192 MB)"
        )
        return t

    @property
    def satisfied_ok(self) -> bool:
        return all(r.satisfied_fraction >= 0.98 for r in self.rows)


def run(
    full: bool = False,
    epochs: int = 2,
    workers: int = 1,
    seed: int = 0,
) -> E17Result:
    """Run the mega driver and report per-epoch wall / RSS / shipping."""
    import time

    cfg = (MegaConfig.full if full else MegaConfig.quick)(
        parallelism=workers, seed=seed
    )
    t0 = time.perf_counter()
    with MegaScaleDriver(cfg) as driver:
        bootstrap_wall = time.perf_counter() - t0
        reports = driver.run(epochs)
    result = E17Result(
        config=cfg,
        bootstrap_wall_s=bootstrap_wall,
        cpu_count=os.cpu_count() or 1,
    )
    for r in reports:
        result.rows.append(
            E17Row(
                epoch=r.epoch,
                wall_s=r.wall_s,
                vms=r.vms,
                demand_cpu=r.demand_cpu,
                satisfied_fraction=r.satisfied_fraction,
                changes=r.changes,
                delta_tasks=r.delta_tasks,
                full_tasks=r.full_tasks,
                shipped_mb=r.bytes_shipped / (1024.0 * 1024.0),
                peak_rss_mb=r.peak_rss_mb,
            )
        )
    return result
