"""E19 — the traffic data plane at mega scale.

E17/E18 proved the *placement* loop runs the paper's Section I size in
bounded memory; E19 closes the remaining object-scale gap: every epoch
now also steers a seeded request stream — resolver DNS lookups with TTL
caching, weighted VIP answers, weighted RIP picks against the columnar
mirror, connection tracking with per-switch capacity — entirely as
batched array operations (:class:`repro.dataplane.ColumnarDataPlane`).
The K1 (DNS re-steer) and K2 (VIP re-home, pause-window gated) knobs
fire on a schedule *inside* the steered stream, so the run demonstrates
the paper's traffic-management story at 300k servers, not a replay of
pre-computed answers.

At quick scale the same stream is also pushed through the object-model
data plane (``Resolver`` / ``AuthoritativeDNS`` / ``ConnectionTable``
per switch) to put a measured number on why the columnar path exists:
the PR's acceptance gate is >=10x steering throughput.  The two paths
are proven request-for-request identical by
:func:`repro.testing.run_dataplane_differential`; this experiment only
races them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.reporting import Table
from repro.core.mega import (
    MegaConfig,
    MegaControlPlaneConfig,
    MegaScaleDriver,
    MegaSteeringConfig,
)
from repro.obs.audit import InvariantAuditor
from repro.obs.trace import TraceBus


@dataclass
class E19Row:
    epoch: int
    wall_s: float
    steer_wall_s: float
    requests: int
    requests_per_s: float
    dns_hit_rate: float
    opened: int
    rejected: int
    unserved: int
    closed: int
    dropped: int
    alive: int
    peak_rss_mb: float


@dataclass
class E19Result:
    rows: list[E19Row] = field(default_factory=list)
    config: MegaConfig = field(default_factory=MegaConfig.quick)
    steering: MegaSteeringConfig = field(default_factory=MegaSteeringConfig)
    wired_apps: int = 0
    bootstrap_wall_s: float = 0.0
    knob_events: dict[str, int] = field(default_factory=dict)
    auditor_ok: bool = True
    #: Quick mode only: the object data plane racing the same stream.
    object_requests_per_s: float | None = None
    speedup_vs_object: float | None = None
    cpu_count: int = 1

    @property
    def requests_total(self) -> int:
        return sum(r.requests for r in self.rows)

    @property
    def steer_wall_total_s(self) -> float:
        return sum(r.steer_wall_s for r in self.rows)

    @property
    def requests_per_s(self) -> float:
        return self.requests_total / max(self.steer_wall_total_s, 1e-9)

    @property
    def peak_rss_mb(self) -> float:
        return max((r.peak_rss_mb for r in self.rows), default=0.0)

    def table(self) -> Table:
        cfg = self.config
        t = Table(
            "E19 — mega data plane: "
            f"{cfg.n_servers} servers / {cfg.n_apps} apps, "
            f"{self.steering.requests_per_epoch} req/epoch over "
            f"{self.wired_apps} wired apps",
            [
                "epoch",
                "wall(s)",
                "steer(s)",
                "req/s",
                "dns hit",
                "opened",
                "rejected",
                "unserved",
                "alive",
                "rss(MB)",
            ],
        )
        for r in self.rows:
            t.add_row(
                r.epoch,
                round(r.wall_s, 3),
                round(r.steer_wall_s, 3),
                f"{r.requests_per_s:,.0f}",
                f"{r.dns_hit_rate:.3f}",
                r.opened,
                r.rejected,
                r.unserved,
                r.alive,
                round(r.peak_rss_mb, 1),
            )
        knobs = ", ".join(
            f"{k}={v}" for k, v in sorted(self.knob_events.items())
        ) or "none"
        t.add_note(
            f"steady steering throughput {self.requests_per_s:,.0f} req/s; "
            f"knob actions fired mid-stream: {knobs}; invariant auditor "
            f"{'ok' if self.auditor_ok else 'VIOLATED'}"
        )
        if self.speedup_vs_object is not None:
            t.add_note(
                f"object data plane races the same stream at "
                f"{self.object_requests_per_s:,.0f} req/s -> columnar is "
                f"{self.speedup_vs_object:.1f}x faster (request-for-request "
                "identical by the differential oracle)"
            )
        t.add_note(
            f"bootstrap {self.bootstrap_wall_s:.2f}s; host "
            f"cpu_count={self.cpu_count}"
        )
        return t


def run(
    full: bool = False,
    epochs: int = 4,
    workers: int = 1,
    seed: int = 0,
    with_object: bool | None = None,
) -> E19Result:
    """Steer the request stream through the mega epoch loop and report
    throughput; at quick scale also race the object data plane."""
    import time

    cfg = (MegaConfig.full if full else MegaConfig.quick)(
        parallelism=workers, seed=seed
    )
    cp = MegaControlPlaneConfig(wired_apps=128, vips_per_app=2)
    sc = MegaSteeringConfig(knob_period=2)
    if with_object is None:
        with_object = not full
    trace = TraceBus(keep_events=False)
    knob_events: dict[str, int] = {}
    trace.subscribe(
        lambda ev: ev.kind == "knob"
        and knob_events.__setitem__(
            ev.data["knob"], knob_events.get(ev.data["knob"], 0) + 1
        )
    )
    t0 = time.perf_counter()
    with MegaScaleDriver(
        cfg, trace=trace, control_plane=cp, steering=sc
    ) as driver:
        bootstrap_wall = time.perf_counter() - t0
        auditor = InvariantAuditor(columnar=driver).attach(trace)
        reports, alive_after = [], []
        for _ in range(epochs):
            reports.append(driver.run_epoch())
            alive_after.append(driver.dataplane.conn.alive_count)
        result = E19Result(
            config=cfg,
            steering=sc,
            wired_apps=cp.wired_apps,
            bootstrap_wall_s=bootstrap_wall,
            knob_events=dict(knob_events),
            auditor_ok=auditor.ok,
            cpu_count=os.cpu_count() or 1,
        )
        for r, alive in zip(reports, alive_after):
            result.rows.append(
                E19Row(
                    epoch=r.epoch,
                    wall_s=r.wall_s,
                    steer_wall_s=r.steer_wall_s,
                    requests=r.requests,
                    requests_per_s=r.requests / max(r.steer_wall_s, 1e-9),
                    dns_hit_rate=r.dns_hits / max(r.requests, 1),
                    opened=r.conns_opened,
                    rejected=r.conns_rejected,
                    unserved=r.unserved,
                    closed=r.conns_closed,
                    dropped=r.conns_dropped,
                    alive=alive,
                    peak_rss_mb=r.peak_rss_mb,
                )
            )
        if with_object:
            from repro.dataplane.objectpath import ObjectDataPlane

            wired = [driver._app_name(int(g)) for g in driver._wired_gids]
            zones = {a: driver.dataplane.dns.zone(a) for a in wired}
            obj = ObjectDataPlane(
                driver.dataplane_switches(),
                wired,
                zones,
                driver.request_stream,
                ttl_s=sc.ttl_s,
                violation_factor=sc.violation_factor,
                switch_max_connections=sc.switch_max_connections,
            )
            t0 = time.perf_counter()
            obj_rep = obj.steer_epoch(epochs, epochs * cfg.epoch_s)
            obj_wall = time.perf_counter() - t0
            result.object_requests_per_s = obj_rep.requests / max(
                obj_wall, 1e-9
            )
            result.speedup_vs_object = (
                result.requests_per_s / result.object_requests_per_s
            )
    return result
