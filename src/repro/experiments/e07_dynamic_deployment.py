"""E7 — dynamic application deployment: relief vs. turbulence (Section IV-D).

"the number of application deployments and removals must be minimized as
these operations are resource-intensive and can create turbulences".

A flash crowd hits several applications.  Two escalation policies:

* **cheap-first** (K6 -> K5 -> K4 -> K3): deployment is the third resort;
* **deploy-first** (K4 immediately): fastest possible relief, maximum
  turbulence.

We report the relief-vs-cost frontier: SLO violation time (epoch-seconds
with satisfied demand < 99 %), deployments performed, gigabytes copied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table
from repro.core import MegaDataCenter, PlatformConfig
from repro.core.knobs.ladder import CHEAP_FIRST, DEPLOY_FIRST, KnobLadder
from repro.sim import RngHub
from repro.workload import WorkloadBuilder


@dataclass
class E7Row:
    policy: str
    slo_violation_s: float
    deployments: int
    gb_copied: float
    min_satisfied: float
    final_satisfied: float


@dataclass
class E7Result:
    rows: list[E7Row] = field(default_factory=list)
    crowd_window: tuple[float, float] = (0.0, 0.0)

    def table(self) -> Table:
        t = Table(
            "E7 — flash-crowd relief vs deployment turbulence",
            [
                "policy",
                "SLO violation (s)",
                "deployments",
                "GB copied",
                "min satisfied",
                "final satisfied",
            ],
        )
        for r in self.rows:
            t.add_row(
                r.policy,
                r.slo_violation_s,
                r.deployments,
                round(r.gb_copied, 1),
                r.min_satisfied,
                r.final_satisfied,
            )
        t.add_note(
            "paper: deployments 'must be minimized'.  The trade is "
            "depth-vs-duration: eager deployment softens the worst of the "
            "overload (higher min satisfied) but its churn lengthens the "
            "recovery tail, and it copies the most bytes; disabling K4 "
            "costs nothing in turbulence but leaves the deepest trough."
        )
        return t


def _run_policy(name: str, order, duration_s: float, seed: int = 0) -> E7Row:
    builder = WorkloadBuilder(
        n_apps=16, total_gbps=10.0, diurnal_fraction=0.0, rng_hub=RngHub(seed)
    )
    apps = builder.build()
    # Spike sized so pods overload but the platform retains headroom
    # (~34 of 40 CPU at peak): relief speed is then a property of the
    # policy, not of raw capacity.
    apps = builder.with_flash_crowd(
        apps, victims=[0, 1, 2], spike_factor=8.0, start_s=600.0, ramp_s=120.0,
        hold_s=1200.0,
    )
    dc = MegaDataCenter(
        apps,
        config=PlatformConfig(),
        n_pods=5,
        servers_per_pod=8,
        n_switches=4,
    )
    dc.global_manager.ladder = KnobLadder(order=order)
    dc.run(duration_s)

    # SLO violation time: epochs meaningfully below target (97 %
    # satisfied) after the crowd hits; a stricter threshold mostly counts
    # rebalancing noise in the 0.98-0.99 band.
    epoch = dc.config.epoch_s
    times = dc.satisfied.times()
    values = dc.satisfied.values()
    violation_s = float(
        sum(epoch for t, v in zip(times, values) if t >= 600.0 and v < 0.97)
    )
    crowd_vals = [v for t, v in zip(times, values) if t >= 600.0]
    stats = dc.global_manager.deployment.stats
    return E7Row(
        policy=name,
        slo_violation_s=violation_s,
        deployments=stats.deployments,
        gb_copied=stats.bytes_copied_gb,
        min_satisfied=round(min(crowd_vals), 4) if crowd_vals else 1.0,
        final_satisfied=round(dc.satisfied.current, 4),
    )


def run(duration_s: float = 3600.0, seed: int = 0) -> E7Result:
    result = E7Result(crowd_window=(600.0, 600.0 + 120.0 + 1200.0))
    result.rows.append(
        _run_policy("no-deployment (K6/K5/K3)", ("K6", "K5", "K3"), duration_s, seed)
    )
    result.rows.append(_run_policy("cheap-first", CHEAP_FIRST, duration_s, seed))
    result.rows.append(_run_policy("deploy-first", DEPLOY_FIRST, duration_s, seed))
    return result
