"""E3 — LB fabric sizing and the not-a-bottleneck claim (Section III-B/V-A).

Analytic table at full mega-DC scale (the paper's own arithmetic):

* 300,000 apps x 2 VIPs / 4,000 = 150 switches -> ~600 Gbps aggregate;
* max(300K*3/4000, 300K*20/16000) = 375 switches;
* the LB layer processes only the ~20 % external share of traffic.

Plus a simulated check at reduced scale: run the full architecture and
confirm the LB layer's measured traffic equals the external share and no
switch saturates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import Table
from repro.core import MegaDataCenter, PlatformConfig
from repro.core.sizing import (
    aggregate_lb_bandwidth_gbps,
    lb_layer_is_bottleneck,
    switches_needed,
)
from repro.lbswitch.switch import SwitchLimits
from repro.sim import RngHub
from repro.workload import WorkloadBuilder


@dataclass
class E3Result:
    analytic_rows: list[tuple] = field(default_factory=list)
    sim_total_external_gbps: float = 0.0
    sim_lb_capacity_gbps: float = 0.0
    sim_max_switch_util: float = 0.0

    def table(self) -> Table:
        t = Table(
            "E3 — LB fabric sizing (paper: 150 switches/600Gbps @ k=2; 375 @ k=3, 20 RIPs)",
            ["apps", "vips/app", "rips/app", "by VIPs", "by RIPs", "required", "aggregate Gbps", "bottleneck @20% ext?"],
        )
        for row in self.analytic_rows:
            t.add_row(*row)
        t.add_note(
            "bottleneck check assumes ~1 server/app averaging 20 Mbps of "
            "total traffic, 20% of it external (Greenberg et al.)"
        )
        t.add_note(
            "simulated reduced-scale check: external traffic through LB layer = "
            f"{self.sim_total_external_gbps:.2f} Gbps of {self.sim_lb_capacity_gbps:.0f} Gbps capacity; "
            f"max switch utilization {self.sim_max_switch_util:.3f} (<1: not a bottleneck)"
        )
        return t


def run(
    app_counts: tuple[int, ...] = (100_000, 300_000, 500_000),
    vips_per_app: tuple[float, ...] = (1.0, 2.0, 3.0),
    rips_per_app: float = 20.0,
    per_server_gbps: float = 0.02,
    seed: int = 0,
) -> E3Result:
    result = E3Result()
    limits = SwitchLimits()
    for a in app_counts:
        for k in vips_per_app:
            size = switches_needed(a, k, rips_per_app, limits)
            # Paper's traffic model: total DC traffic scales with servers
            # (~1 server/app at mega scale); external share crosses LB layer.
            total_traffic = a * per_server_gbps
            bottleneck = lb_layer_is_bottleneck(
                size.required, total_traffic, external_fraction=0.2, limits=limits
            )
            result.analytic_rows.append(
                (
                    a,
                    k,
                    rips_per_app,
                    size.by_vips,
                    size.by_rips,
                    size.required,
                    size.aggregate_gbps,
                    "YES" if bottleneck else "no",
                )
            )

    # Reduced-scale simulation: is the measured LB-layer load the external
    # share, and does any switch saturate?
    apps = WorkloadBuilder(
        n_apps=40, total_gbps=16.0, diurnal_fraction=0.0, rng_hub=RngHub(seed)
    ).build()
    dc = MegaDataCenter(
        apps,
        config=PlatformConfig(),
        n_pods=3,
        servers_per_pod=12,
        n_switches=6,
    )
    dc.run(10 * 60.0)
    lb_traffic = sum(s.traffic_gbps for s in dc.switches.values())
    result.sim_total_external_gbps = lb_traffic
    result.sim_lb_capacity_gbps = sum(
        s.limits.throughput_gbps for s in dc.switches.values()
    )
    result.sim_max_switch_util = max(dc.switch_utilizations().values())
    return result
