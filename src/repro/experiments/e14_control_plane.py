"""E14 — control-plane crash safety (journal, checkpoints, anti-entropy).

PR 1 could crash servers, switches and links; the control plane itself was
assumed infallible.  Here the serialized VIP/RIP manager — the paper's
single point of reconfiguration — is the victim:

* an LB switch fails, forcing K2 re-homes through the manager;
* the manager is crashed **mid-move**, inside the cutover window where
  the VIP has left the source switch but not yet landed on the target
  (a half-configured switch, plus a wiped request queue);
* the supervisor restarts it: the latest checkpoint is restored and the
  journal tail is replayed with epoch-fenced idempotent applies, which
  *finishes the interrupted move* from its PREPARED record;
* later, drift is injected directly into switch tables (a deleted RIP
  and a ghost RIP no registry knows) and the anti-entropy reconciler
  must detect and repair it within its convergence bound.

The sweep varies the checkpoint interval and reports manager MTTR,
reconfigurations dropped by the crash, and the replay-tail length —
the recovery-cost-vs-checkpoint-frequency trade the subsystem exists
to expose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.reporting import Table
from repro.core.config import PlatformConfig
from repro.core.datacenter import MegaDataCenter
from repro.faults import FaultInjector, FaultSchedule, RecoveryMonitor
from repro.sim.rng import RngHub
from repro.workload.generator import WorkloadBuilder

#: Scenario script (seconds).  t0 is off the epoch grid so the first
#: re-home is not racing a placement epoch.
T0 = 330.0
OUTAGE_S = 600.0
DRIFT_T = 1200.0
#: Shortest run containing the script plus reconciler convergence room.
MIN_DURATION_S = 1500.0

#: Default checkpoint-interval sweep (seconds).
DEFAULT_INTERVALS = (60.0, 240.0, 960.0)


@dataclass
class E14Case:
    """Outcome of the scripted scenario at one checkpoint interval."""

    checkpoint_interval_s: float
    mttr_manager_s: float
    #: Queued/in-flight reconfigurations wiped by the crash.
    lost_reconfigurations: int
    #: Journal records replayed during recovery (the tail length).
    replayed_records: int
    checkpoints_taken: int
    journal_appended: int
    manager_crashes: int
    drift_detected: int
    drift_repaired: int
    #: Slowest drift->clean convergence of the reconciler (nan if the
    #: run never drifted).
    convergence_max_s: float
    #: Injection-to-clean time for the scripted table tampering at
    #: ``DRIFT_T`` (nan if the drift was never seen).
    tamper_convergence_s: float
    #: A final reconciliation pass found nothing left to repair.
    end_state_clean: bool
    invariants_ok: bool
    #: Online InvariantAuditor violations (0 unless the case was run with
    #: ``audit=True`` and something actually broke).
    violations: int = 0

    @property
    def recovered(self) -> bool:
        return (
            self.manager_crashes == 1
            and self.mttr_manager_s > 0
            and self.replayed_records >= 1  # the interrupted move's record
            and self.drift_detected >= 2  # the injected table tampering
            and self.drift_repaired >= 2
            and not math.isnan(self.tamper_convergence_s)
            and self.end_state_clean
            and self.invariants_ok
        )


@dataclass
class E14Result:
    cases: list[E14Case] = field(default_factory=list)
    reconcile_interval_s: float = 30.0
    monitors: list[RecoveryMonitor] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """Acceptance predicate: every interval's scenario recovered and
        the injected table drift was repaired within two reconciler
        periods of injection (one pass to catch it, one to confirm)."""
        if not self.cases:
            return False
        bound = 2.0 * self.reconcile_interval_s + 1e-9
        return all(
            c.recovered and c.tamper_convergence_s <= bound for c in self.cases
        )

    def table(self) -> Table:
        t = Table(
            "E14 — control-plane crash safety vs checkpoint interval",
            [
                "ckpt interval s",
                "manager MTTR s",
                "lost reconfigs",
                "replayed",
                "ckpts",
                "journaled",
                "drift det/rep",
                "tamper conv s",
                "clean end",
            ],
        )
        for c in self.cases:
            t.add_row(
                c.checkpoint_interval_s,
                round(c.mttr_manager_s, 2),
                c.lost_reconfigurations,
                c.replayed_records,
                c.checkpoints_taken,
                c.journal_appended,
                f"{c.drift_detected}/{c.drift_repaired}",
                "-"
                if math.isnan(c.tamper_convergence_s)
                else round(c.tamper_convergence_s, 1),
                c.end_state_clean,
            )
        t.add_note(
            "crash lands inside the move_vip cutover: the journal's PREPARED "
            "record is what lets replay finish the half-configured move"
        )
        t.add_note(
            f"reconciler period {self.reconcile_interval_s:g} s; convergence "
            f"bound = 2 periods"
        )
        t.add_note(f"scenario recovered: {self.recovered}")
        return t


def _run_case(
    seed: int,
    duration_s: float,
    checkpoint_interval_s: float,
    config: PlatformConfig,
    obs=None,
    audit: bool = False,
) -> tuple[E14Case, RecoveryMonitor]:
    hub = RngHub(seed)
    apps = WorkloadBuilder(
        n_apps=10,
        total_gbps=5.0,
        diurnal_fraction=0.0,  # steady load: the control plane is the story
        rng_hub=hub.spawn("workload"),
    ).build()
    dc = MegaDataCenter(
        apps,
        config=config,
        n_pods=3,
        servers_per_pod=8,
        n_switches=4,
        crash_safe_manager=True,
        obs=obs,
        audit=audit,
    )

    # Victim switch: the one carrying the most VIPs, so the crash has the
    # longest re-home queue to wipe.
    switch = max(dc.switches.values(), key=lambda s: (s.num_vips, s.name)).name
    # Crash mid-first-move: detection + one reconfiguration puts the move
    # into its cutover window; 3/4 of the window absorbs an in-flight
    # request delaying the move by up to one reconfiguration.
    t_crash = (
        T0
        + config.fault_detection_s
        + config.switch_reconfig_s
        + 0.75 * config.manager_cutover_s
    )
    schedule = FaultSchedule.from_events(
        [
            (T0, "switch_fail", switch),
            (t_crash, "manager_crash", "viprip"),
            (t_crash + 120.0, "manager_recover", "viprip"),
            (T0 + OUTAGE_S, "switch_recover", switch),
        ]
    )
    monitor = RecoveryMonitor()
    injector = FaultInjector(dc, schedule, monitor)

    def tamper():
        # Direct table corruption the control plane never sanctioned: the
        # reconciler, not the journal, must catch this class of fault.
        yield dc.env.timeout(DRIFT_T)
        tampered = 0
        for name in sorted(dc.switches):
            sw = dc.switches[name]
            if name in dc.state.failed_switches:
                continue
            for vip in sorted(sw.vips()):
                rips = sorted(sw.entry(vip).rips)
                if tampered == 0 and rips:
                    sw.remove_rip(vip, rips[0])  # registered RIP vanishes
                    tampered += 1
                elif tampered == 1:
                    sw.add_rip(vip, "rip-ghost-e14", 1.0)  # unaccounted RIP
                    tampered += 1
                if tampered >= 2:
                    return
            if tampered >= 2:
                return

    dc.env.process(tamper())
    dc.run(duration_s)
    assert injector.finished

    # End-state audit: one more reconciliation pass must come back clean.
    final = dc.reconciler.run_pass()
    # Convergence of the injected tampering: injection time to the first
    # clean (non-skipped) pass after a pass saw the drift.
    tamper_conv = math.nan
    dirty = next(
        (r for r in dc.reconciler.reports if r.t >= DRIFT_T and r.detected), None
    )
    if dirty is not None:
        clean = next(
            (
                r
                for r in dc.reconciler.reports
                if r.t > dirty.t and r.clean and not r.notes
            ),
            None,
        )
        if clean is not None:
            tamper_conv = clean.t - DRIFT_T
    tally = monitor.mttr("manager")
    case = E14Case(
        checkpoint_interval_s=checkpoint_interval_s,
        mttr_manager_s=tally.mean if tally is not None and tally.count else 0.0,
        lost_reconfigurations=dc.viprip.lost,
        replayed_records=dc.viprip.replayed,
        checkpoints_taken=dc.checkpoints.taken,
        journal_appended=dc.journal.appended,
        manager_crashes=dc.manager_crashes,
        drift_detected=dc.reconciler.drift_detected,
        drift_repaired=dc.reconciler.drift_repaired,
        convergence_max_s=(
            max(dc.reconciler.convergence_times)
            if dc.reconciler.convergence_times
            else math.nan
        ),
        tamper_convergence_s=tamper_conv,
        end_state_clean=final.clean,
        invariants_ok=dc.invariants_ok(),
        violations=len(dc.auditor.violations) if dc.auditor is not None else 0,
    )
    dc.close()
    return case, monitor


def run(
    seed: int = 42,
    duration_s: float = 1800.0,
    checkpoint_intervals: tuple[float, ...] = DEFAULT_INTERVALS,
    obs=None,
    audit: bool = False,
) -> E14Result:
    """Sweep the checkpoint interval over the scripted crash scenario.

    With *obs*/*audit*, every case emits onto the same trace bus and is
    audited online (each case's auditor detaches at case end, so sweeps
    do not cross-talk)."""
    if duration_s < MIN_DURATION_S:
        raise ValueError(
            f"duration_s={duration_s:g} too short: the scripted scenario "
            f"(crash at ~{T0:g}s, drift at {DRIFT_T:g}s, convergence) "
            f"needs >= {MIN_DURATION_S:g} s"
        )
    result = E14Result()
    for interval in checkpoint_intervals:
        config = PlatformConfig(checkpoint_interval_s=interval, manager_cutover_s=4.0)
        result.reconcile_interval_s = config.reconcile_interval_s
        case, monitor = _run_case(
            seed, duration_s, interval, config, obs=obs, audit=audit
        )
        result.cases.append(case)
        result.monitors.append(monitor)
    return result
