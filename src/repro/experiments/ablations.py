"""Ablations of the design choices DESIGN.md §5 calls out.

* **A1 pod size** — the ≤5,000-server cap is a knob: larger pods give the
  placement controller more freedom (quality up) but a bigger decision
  space (time up).  Sweep the pod size on a fixed fleet.
* **A2 exposure-before-transfer** — K2's drain step: transfer a VIP without
  draining and every pinned session breaks; drain first and (almost) none
  do, at the cost of waiting.
* **A3 K1 damping** — the exposure controller blends new weights with old;
  zero damping reacts fastest but overshoots with laggy clients, heavy
  damping converges slowly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import Table
from repro.experiments.e02_placement_scalability import make_instance, split_into_pods
from repro.experiments.e04_selective_exposure import ExposureScenario
from repro.lbswitch.conntrack import ConnectionTable
from repro.placement import GreedyController, TangController, evaluate_solution
from repro.sim import Environment, RngHub


# ------------------------------------------------------------- A1 pod size


@dataclass
class A1Result:
    rows: list[tuple] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "A1 — pod size: decision time vs placement quality (Tang in-pod)",
            ["pod size", "pods", "max pod decision (s)", "total (s)", "satisfied"],
        )
        for row in self.rows:
            t.add_row(*row)
        t.add_note(
            "the paper caps pods at 5,000 servers / 10,000 VMs: past the "
            "knee, bigger pods buy little quality for superlinear time"
        )
        return t


def run_pod_size(
    n_servers: int = 400,
    pod_sizes: tuple[int, ...] = (25, 50, 100, 200, 400),
    load_factor: float = 0.9,
    seed: int = 0,
) -> A1Result:
    problem = make_instance(n_servers, load_factor=load_factor, seed=seed)
    result = A1Result()
    controller = TangController()
    for size in pod_sizes:
        pods = split_into_pods(problem, size)
        times, satisfied, demand = [], 0.0, 0.0
        for pod_problem in pods:
            sol = controller.solve(pod_problem)
            evaluate_solution(pod_problem, sol)
            times.append(sol.wall_time_s)
            satisfied += sol.satisfied().sum()
            demand += pod_problem.total_demand
        result.rows.append(
            (
                size,
                len(pods),
                round(max(times), 3),
                round(sum(times), 3),
                round(satisfied / demand, 4),
            )
        )
    return result


# ----------------------------------------------- A2 drain-first vs blind K2


@dataclass
class A2Result:
    rows: list[tuple] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "A2 — K2 with vs without the exposure-first drain",
            ["strategy", "trials", "mean sessions broken", "mean transfer wait (s)"],
        )
        for row in self.rows:
            t.add_row(*row)
        t.add_note(
            "paper: 'a VIP cannot be blindly transferred ... packets of the "
            "same TCP session must arrive to the same RIP'"
        )
        return t


def _a2_trial(seed: int, drain_first: bool, timeout_s: float = 600.0):
    """One session-level trial; returns (sessions broken, wait time)."""
    from repro.experiments.e05_vip_transfer import pause_trial

    if drain_first:
        outcome = pause_trial(seed, violator_fraction=0.05, timeout_s=timeout_s)
        if outcome.paused:
            return 0, outcome.time_to_pause_s
        # Timeout: a forced move breaks the laggard residue still pinned.
        return outcome.sessions_at_timeout, timeout_s
    return _a2_blind_count(seed, at=200.0), 0.0


def _a2_blind_count(seed: int, at: float) -> int:
    """Sessions alive at time *at* in the same arrival process — the count
    a blind transfer would break."""
    env = Environment()
    rng = RngHub(seed).stream("pause-trial")  # same stream as pause_trial
    table = ConnectionTable()
    state = {"next": 0}

    def arrivals():
        while True:
            yield env.timeout(float(rng.exponential(1.0 / 3.0)))
            if rng.random() < 1.0:  # share==0.5 doubled, as in pause_trial
                cid = state["next"]
                state["next"] += 1
                table.open(cid, "vip1", "r", env.now)
                env.process(session(cid))

    def session(cid):
        yield env.timeout(float(rng.exponential(30.0)))
        table.close(cid)

    env.process(arrivals())
    env.run(until=at)
    return table.count_for_vip("vip1")


def run_drain_ablation(trials: int = 10) -> A2Result:
    result = A2Result()
    for drain_first in (False, True):
        broken, waits = [], []
        for seed in range(trials):
            b, w = _a2_trial(seed, drain_first)
            broken.append(b)
            waits.append(w)
        result.rows.append(
            (
                "drain-first (K1 then move)" if drain_first else "blind transfer",
                trials,
                round(float(np.mean(broken)), 1),
                round(float(np.mean(waits)), 1),
            )
        )
    return result


# ------------------------------------------------------------ A3 K1 damping


@dataclass
class A3Result:
    rows: list[tuple] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "A3 — K1 exposure damping: reaction speed vs overshoot",
            ["damping", "time-to-relief (s)", "peak util", "re-overload events"],
        )
        for row in self.rows:
            t.add_row(*row)
        t.add_note(
            "damping blends old weights in; 0 reacts fastest but overshoots "
            "against client-side TTL lag"
        )
        return t


def run_damping_ablation(
    dampings: tuple[float, ...] = (0.0, 0.5, 0.8), duration_s: float = 2400.0
) -> A3Result:
    result = A3Result()
    for damping in dampings:
        scenario = ExposureScenario("k1")
        scenario.k1.damping = damping
        scenario.run(duration_s)
        # Count re-overload events: upward crossings of the threshold
        # after the first relief.
        series = scenario.util_series["link-a"]
        values = series.values()
        times = series.times()
        crossings = 0
        relieved = False
        for t, v in zip(times, values):
            if t <= scenario.spike_at:
                continue
            if relieved and v > scenario.overload_threshold:
                crossings += 1
                relieved = False
            elif v <= scenario.overload_threshold:
                relieved = True
        result.rows.append(
            (
                damping,
                round(scenario.relief_time, 1)
                if math.isfinite(scenario.relief_time)
                else "never",
                round(scenario.peak_util, 3),
                crossings,
            )
        )
    return result


# ------------------------------------- A4 compartmentalization (Section I-A)


@dataclass
class A4Result:
    rows: list[tuple] = field(default_factory=list)
    threshold: float = 0.85

    def table(self) -> Table:
        t = Table(
            "A4 — compartmentalizing the LB fabric vs a shared pool (statistical multiplexing)",
            ["organization", "mean peak util", "p99 peak util", f"P(overload > {self.threshold})"],
        )
        for row in self.rows:
            t.add_row(*row)
        t.add_note(
            "paper §I-A: partitioning applications among switches "
            "'compartmentalizes the data center resources and diminishes "
            "the benefits of statistical multiplexing'"
        )
        return t


def _peak_util_lpt(demands: np.ndarray, n_switches: int, capacity: float) -> float:
    """Longest-processing-time assignment: peak switch utilization."""
    loads = np.zeros(n_switches)
    for d in np.sort(demands)[::-1]:
        i = int(np.argmin(loads))
        loads[i] += d
    return float(loads.max() / capacity)


def run_compartmentalization(
    n_apps: int = 240,
    n_switches: int = 24,
    n_groups: int = 8,
    mean_total_gbps: float = 56.0,
    capacity: float = 4.0,
    trials: int = 300,
    threshold: float = 0.85,
    seed: int = 0,
) -> A4Result:
    """Random lognormal demands; assign apps to switches pooled vs
    partitioned into *n_groups* compartments of equal switch count."""
    if n_switches % n_groups:
        raise ValueError("n_groups must divide n_switches")
    rng = np.random.default_rng(seed)
    base = rng.lognormal(0.0, 0.8, n_apps)
    base = base / base.sum() * mean_total_gbps
    group_of = np.arange(n_apps) % n_groups
    per_group = n_switches // n_groups

    result = A4Result(threshold=threshold)
    peaks = {"shared pool": [], "partitioned": []}
    for _ in range(trials):
        demand = base * rng.lognormal(0.0, 0.5, n_apps)
        peaks["shared pool"].append(_peak_util_lpt(demand, n_switches, capacity))
        group_peaks = [
            _peak_util_lpt(demand[group_of == g], per_group, capacity)
            for g in range(n_groups)
        ]
        peaks["partitioned"].append(max(group_peaks))
    for name in ("shared pool", "partitioned"):
        arr = np.asarray(peaks[name])
        result.rows.append(
            (
                name,
                round(float(arr.mean()), 3),
                round(float(np.percentile(arr, 99)), 3),
                round(float((arr > threshold).mean()), 3),
            )
        )
    return result
