"""E12 — placement quality: centralized vs hierarchical vs distributed.

Section I-A: "distributed approaches improve scalability at the expense of
the quality of their solutions".  We run all three controllers over a
sequence of epochs with drifting demand (each controller carries its own
placement forward) and compare satisfied demand, placement churn, and
decision time on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import Table
from repro.experiments.e02_placement_scalability import make_instance, split_into_pods
from repro.perf.engine import PlacementEngine, PlacementTask
from repro.placement import (
    DistributedController,
    GreedyController,
    PlacementProblem,
    TangController,
    evaluate_solution,
)


@dataclass
class E12Row:
    controller: str
    mean_satisfied: float
    worst_satisfied: float
    total_changes: int
    total_time_s: float


@dataclass
class E12Result:
    rows: list[E12Row] = field(default_factory=list)
    epochs: int = 0

    def table(self) -> Table:
        t = Table(
            f"E12 — placement quality over {self.epochs} drifting-demand epochs",
            ["controller", "mean satisfied", "worst satisfied", "total changes", "total time (s)"],
        )
        for r in self.rows:
            t.add_row(
                r.controller,
                round(r.mean_satisfied, 4),
                round(r.worst_satisfied, 4),
                r.total_changes,
                round(r.total_time_s, 3),
            )
        t.add_note(
            "paper: distributed scales best but loses solution quality; the "
            "hierarchical scheme approaches centralized quality at pod-level cost"
        )
        return t


def _drift(demands: np.ndarray, rng: np.random.Generator, sigma: float = 0.25) -> np.ndarray:
    """Multiplicative lognormal drift, renormalized to constant total."""
    factor = rng.lognormal(0.0, sigma, size=demands.shape)
    out = demands * factor
    return out * demands.sum() / out.sum()


def run(
    n_servers: int = 240,
    epochs: int = 6,
    pod_size: int = 80,
    load_factor: float = 0.85,
    seed: int = 0,
    parallelism: int = 1,
) -> E12Result:
    base = make_instance(n_servers, load_factor=load_factor, seed=seed)
    rng = np.random.default_rng(seed + 1)
    demand_seq = [base.app_cpu_demand]
    for _ in range(epochs - 1):
        demand_seq.append(_drift(demand_seq[-1], rng))

    result = E12Result(epochs=epochs)

    # centralized (Tang) and distributed: full problem each epoch.
    for name, controller in (
        ("tang-centralized", TangController()),
        ("distributed", DistributedController(sample_size=4, rng=np.random.default_rng(seed))),
    ):
        placement = base.current.copy()
        sats, changes, t_total, worst = [], 0, 0.0, 1.0
        for demand in demand_seq:
            problem = PlacementProblem(
                server_cpu=base.server_cpu,
                server_mem=base.server_mem,
                app_cpu_demand=demand,
                app_mem=base.app_mem,
                current=placement,
            )
            sol = controller.solve(problem)
            q = evaluate_solution(problem, sol)
            sats.append(q.satisfied_fraction)
            worst = min(worst, q.satisfied_fraction)
            changes += sol.changes
            t_total += sol.wall_time_s
            placement = sol.placement
        result.rows.append(
            E12Row(name, float(np.mean(sats)), worst, changes, t_total)
        )

    # hierarchical: fixed server->pod partition; the independent per-pod
    # greedy solves go through the placement engine (serial by default).
    placement = base.current.copy()
    sats, changes, t_total, worst = [], 0, 0.0, 1.0
    with PlacementEngine(parallelism) as engine:
        for demand in demand_seq:
            problem = PlacementProblem(
                server_cpu=base.server_cpu,
                server_mem=base.server_mem,
                app_cpu_demand=demand,
                app_mem=base.app_mem,
                current=placement,
            )
            pods = split_into_pods(problem, pod_size)
            tasks = [
                PlacementTask(
                    key=f"pod-{i}", problem=p, controller=GreedyController()
                )
                for i, p in enumerate(pods)
            ]
            satisfied, total_demand = 0.0, 0.0
            new_placement = np.zeros_like(placement)
            bounds = list(range(0, n_servers, pod_size)) + [n_servers]
            for i, (pod_problem, sol) in enumerate(
                zip(pods, engine.solve_batch(tasks))
            ):
                evaluate_solution(pod_problem, sol)
                satisfied += sol.satisfied().sum()
                total_demand += pod_problem.total_demand
                changes += sol.changes
                t_total += sol.wall_time_s
                new_placement[bounds[i] : bounds[i + 1], :] = sol.placement
            frac = satisfied / total_demand if total_demand else 1.0
            sats.append(frac)
            worst = min(worst, frac)
            placement = new_placement
    result.rows.append(
        E12Row("hierarchical-pods", float(np.mean(sats)), worst, changes, t_total)
    )
    result.rows.sort(key=lambda r: -r.mean_satisfied)
    return result
