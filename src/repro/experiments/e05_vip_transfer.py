"""E5 — dynamic VIP transfer between LB switches (Section IV-B).

Two questions, two sub-experiments:

* **Pause probability** (session level): a VIP "cannot be blindly
  transferred ... packets of the same TCP session must arrive to the same
  RIP".  The global manager drains the VIP via selective exposure first,
  but "some clients will continue using this VIP in violation of
  time-to-live".  We run Monte-Carlo session-level trials (Poisson
  arrivals thinned by the fluid DNS share, exponential session lengths,
  real connection table) and measure the probability a clean pause occurs
  within the drain timeout, versus the TTL-violator fraction.

* **Switch balancing** (fluid level): a hotspot application saturates its
  LB switch; with K2 the global manager moves VIPs to cool switches; we
  report the peak switch utilization and final imbalance with and without
  the knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import Table
from repro.analysis.stats import max_mean_ratio
from repro.core.knobs.base import ActionLog
from repro.core.knobs.vip_transfer import TransferOutcome, VipTransfer
from repro.dns.authority import AuthoritativeDNS
from repro.dns.population import FluidDNSModel
from repro.lbswitch.conntrack import ConnectionTable
from repro.lbswitch.switch import LBSwitch
from repro.sim import Environment, RngHub


# --------------------------------------------------------- pause probability


@dataclass
class PauseTrialResult:
    paused: bool
    time_to_pause_s: float
    sessions_at_drain: int
    #: Sessions still pinned when the drain timeout expires (0 if paused) —
    #: what a forced transfer at that point would break.
    sessions_at_timeout: int = 0


def pause_trial(
    seed: int,
    violator_fraction: float,
    ttl_s: float = 30.0,
    violation_factor: float = 10.0,
    arrival_rate: float = 3.0,
    mean_session_s: float = 30.0,
    warmup_s: float = 200.0,
    timeout_s: float = 600.0,
) -> PauseTrialResult:
    """One session-level drain trial for a single VIP."""
    env = Environment()
    rng = RngHub(seed).stream("pause-trial")
    authority = AuthoritativeDNS(env, ttl_s)
    authority.configure("app", {"vip1": 1.0, "vip2": 1.0})
    fluid = FluidDNSModel(
        authority,
        violator_fraction=violator_fraction,
        violation_factor=violation_factor,
    )
    fluid.ensure_app("app")
    table = ConnectionTable()
    state = {
        "drained_at": None,
        "paused_at": None,
        "sessions_at_drain": 0,
        "next_id": 0,
    }

    def ticker():
        while True:
            yield env.timeout(5.0)
            fluid.advance(5.0)

    def arrivals():
        # Thinned Poisson: candidates at the full rate, accepted with the
        # VIP's current DNS share (x2: baseline share is 0.5).
        while True:
            gap = rng.exponential(1.0 / arrival_rate)
            yield env.timeout(float(gap))
            share = fluid.share_of("app", "vip1")
            if rng.random() < min(1.0, 2.0 * share):
                cid = state["next_id"]
                state["next_id"] += 1
                table.open(cid, "vip1", "10.0.0.1", env.now)
                env.process(session(cid))

    def session(cid):
        yield env.timeout(float(rng.exponential(mean_session_s)))
        table.close(cid)
        if (
            state["drained_at"] is not None
            and state["paused_at"] is None
            and table.is_paused("vip1")
        ):
            state["paused_at"] = env.now

    def drainer():
        yield env.timeout(warmup_s)
        state["drained_at"] = env.now
        state["sessions_at_drain"] = table.count_for_vip("vip1")
        authority.configure("app", {"vip1": 0.0, "vip2": 1.0})

    env.process(ticker())
    env.process(arrivals())
    env.process(drainer())
    env.run(until=warmup_s + timeout_s)
    paused = state["paused_at"] is not None and table.is_paused("vip1")
    t_pause = (
        state["paused_at"] - state["drained_at"] if state["paused_at"] else math.inf
    )
    return PauseTrialResult(
        paused,
        t_pause,
        state["sessions_at_drain"],
        sessions_at_timeout=0 if paused else table.count_for_vip("vip1"),
    )


# ------------------------------------------------------------ switch balance


class SwitchBalanceScenario:
    """Fluid hotspot scenario over a bank of LB switches."""

    def __init__(
        self,
        use_k2: bool,
        n_switches: int = 8,
        n_apps: int = 24,
        base_total_gbps: float = 12.0,
        hotspot_factor: float = 6.0,
        hotspot_at: float = 600.0,
        overload_threshold: float = 0.85,
        seed: int = 0,
        obs=None,
    ):
        self.use_k2 = use_k2
        self.hotspot_factor = hotspot_factor
        self.hotspot_at = hotspot_at
        self.threshold = overload_threshold
        self.obs = obs
        self.env = Environment()
        self.authority = AuthoritativeDNS(self.env, 30.0)
        self.fluid = FluidDNSModel(self.authority, violator_fraction=0.1)
        self.switches = [LBSwitch(f"lb-{i}", self.env) for i in range(n_switches)]
        self.transfer = VipTransfer(
            self.env, self.authority, self.fluid, drain_timeout_s=240.0,
            log=ActionLog(trace=obs.trace) if obs is not None else None,
        )
        self.app_demand = {
            f"app-{i:02d}": base_total_gbps / n_apps for i in range(n_apps)
        }
        self.hot_app = "app-00"
        # Two VIPs per app, packed so early switches are fuller (a
        # realistic skew for a fabric filling up over time).
        self.vip_switch: dict[str, LBSwitch] = {}
        self.app_vips: dict[str, list[str]] = {}
        si = 0
        for app in self.app_demand:
            vips = []
            for v in range(2):
                vip = f"{app}-v{v}"
                switch = self.switches[si % (n_switches // 2)]  # pack low half
                si += 1
                switch.add_vip(vip, app)
                switch.add_rip(vip, f"10.0.{si}.1")
                self.vip_switch[vip] = switch
                vips.append(vip)
            self.app_vips[app] = vips
            self.authority.configure(app, {v: 1.0 for v in vips})
            self.fluid.ensure_app(app)
        self.peak_util = 0.0
        self.settled_peak_util = 0.0  # over the final fifth of the run
        self.final_imbalance = math.nan
        self.transfers = 0
        self._in_flight: set[str] = set()
        self._settle_after = math.inf

    def demand(self, app: str, t: float) -> float:
        base = self.app_demand[app]
        if app == self.hot_app and t >= self.hotspot_at:
            return base * self.hotspot_factor
        return base

    def _apply_traffic(self, t: float):
        for sw in self.switches:
            for vip in sw.vips():
                sw.set_vip_traffic(vip, 0.0)
        for app, vips in self.app_vips.items():
            d = self.demand(app, t)
            shares = self.fluid.shares(app)
            for vip in vips:
                self.vip_switch[vip].set_vip_traffic(
                    vip, d * shares.get(vip, 0.0)
                )

    def _monitor(self):
        while True:
            self._apply_traffic(self.env.now)
            utils = [s.utilization for s in self.switches]
            if self.env.now >= self.hotspot_at:
                self.peak_util = max(self.peak_util, max(utils))
            if self.env.now >= self._settle_after:
                self.settled_peak_util = max(self.settled_peak_util, max(utils))
            yield self.env.timeout(10.0)
            self.fluid.advance(10.0)

    def _controller(self):
        while True:
            yield self.env.timeout(60.0)
            for sw in self.switches:
                if sw.utilization <= self.threshold:
                    continue
                vip = self._busiest_movable(sw)
                if vip is None:
                    continue
                target = min(
                    (s for s in self.switches if s is not sw),
                    key=lambda s: (s.utilization, s.name),
                )
                app = vip.rsplit("-v", 1)[0]
                self._in_flight.add(vip)
                self.env.process(self._do_transfer(app, vip, sw, target))

    def _busiest_movable(self, sw: LBSwitch):
        apps_in_flight = {v.rsplit("-v", 1)[0] for v in self._in_flight}
        cands = [
            v
            for v in sw.vips()
            if v not in self._in_flight
            and v.rsplit("-v", 1)[0] not in apps_in_flight
            and any(
                w > 0
                for x, w in self.authority.weights(v.rsplit("-v", 1)[0]).items()
                if x != v
            )
        ]
        if not cands:
            return None
        return max(cands, key=lambda v: sw.entry(v).traffic_gbps)

    def _do_transfer(self, app, vip, src, dst):
        try:
            result = yield from self.transfer.transfer(
                app,
                vip,
                src,
                dst,
                on_moved=lambda v, name: self.vip_switch.__setitem__(
                    v, next(s for s in self.switches if s.name == name)
                ),
            )
            if result.outcome != TransferOutcome.ABORTED:
                self.transfers += 1
        finally:
            self._in_flight.discard(vip)

    def run(self, duration_s: float = 3600.0):
        self._settle_after = duration_s * 0.8
        self.env.process(self._monitor())
        if self.use_k2:
            self.env.process(self._controller())
        self.env.run(until=duration_s)
        self._apply_traffic(self.env.now)
        self.final_imbalance = max_mean_ratio(
            [s.utilization for s in self.switches]
        )


# ------------------------------------------------------------------ results


@dataclass
class E5Result:
    pause_rows: list[tuple] = field(default_factory=list)
    balance_rows: list[tuple] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "E5a — clean-pause probability for VIP transfer vs TTL violators",
            ["violator %", "trials", "pause prob", "median drain (s)"],
        )
        for row in self.pause_rows:
            t.add_row(*row)
        return t

    def balance_table(self) -> Table:
        t = Table(
            "E5b — LB switch balancing with dynamic VIP transfer (K2)",
            ["strategy", "peak util (incl. drain transient)", "settled peak util", "final imbalance", "transfers"],
        )
        for row in self.balance_rows:
            t.add_row(*row)
        t.add_note(
            "the exposure-first drain temporarily concentrates the hot app on "
            "its remaining VIP, so the transient peak can exceed the no-K2 peak; "
            "the settled state is what the knob optimizes"
        )
        return t


def run(
    violator_fractions: tuple[float, ...] = (0.0, 0.05, 0.2),
    trials: int = 20,
    duration_s: float = 3600.0,
) -> E5Result:
    result = E5Result()
    for vf in violator_fractions:
        outcomes = [pause_trial(seed, vf) for seed in range(trials)]
        prob = float(np.mean([o.paused for o in outcomes]))
        drains = [o.time_to_pause_s for o in outcomes if o.paused]
        median = float(np.median(drains)) if drains else math.inf
        result.pause_rows.append(
            (round(vf * 100, 1), trials, round(prob, 2), round(median, 1))
        )

    for use_k2 in (False, True):
        s = SwitchBalanceScenario(use_k2=use_k2)
        s.run(duration_s)
        result.balance_rows.append(
            (
                "with K2" if use_k2 else "no K2",
                round(s.peak_util, 3),
                round(s.settled_peak_util, 3),
                round(s.final_imbalance, 3),
                s.transfers,
            )
        )
    return result
