"""E11 — the VIPs-per-application trade-off (Section IV-A).

"The more VIPs are allocated to each application, the more flexibility the
system would have for load balancing over the access links.  However, too
many VIPs per application increase the number of LB switches ...  The
tradeoff between the flexibility for load balancing and the number of LB
switches will be evaluated quantitatively in our ongoing work."

This is that promised evaluation.  For each mean VIP count ``k`` we assign
VIPs popularity-proportionally (popular apps get more), pin each VIP to an
access link round-robin, and solve the exposure LP for the best achievable
min-max link utilization; alongside, the LB switches the fabric then needs
at the paper's 300K-application scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.analysis.reporting import Table
from repro.core.sizing import switches_needed
from repro.lbswitch.switch import SwitchLimits
from repro.workload.popularity import allocate_vip_counts, zipf_weights

#: Uneven access links: the interesting regime (even links need no steering).
LINK_CAPS = (20.0, 12.0, 8.0, 6.0, 4.0, 2.0)


def optimal_link_balance(
    demands: np.ndarray, vip_links: list[list[int]], link_caps: np.ndarray
) -> float:
    """LP: per-app weights over its VIPs minimizing max link utilization.

    Variables: w_{a,j} (one per VIP of each app) and t; constraints
    ``sum w_{a,.} = 1`` per app and per-link utilization <= t.
    """
    n_apps = len(demands)
    n_links = len(link_caps)
    offsets = np.cumsum([0] + [len(v) for v in vip_links])
    n_w = int(offsets[-1])
    # inequality rows: links
    a_ub = np.zeros((n_links, n_w + 1))
    for a in range(n_apps):
        for j, link in enumerate(vip_links[a]):
            a_ub[link, offsets[a] + j] = demands[a] / link_caps[link]
    a_ub[:, n_w] = -1.0
    b_ub = np.zeros(n_links)
    a_eq = np.zeros((n_apps, n_w + 1))
    for a in range(n_apps):
        a_eq[a, offsets[a] : offsets[a + 1]] = 1.0
    b_eq = np.ones(n_apps)
    c = np.zeros(n_w + 1)
    c[n_w] = 1.0
    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * (n_w + 1),
        method="highs",
    )
    if not res.success:  # pragma: no cover
        raise RuntimeError(f"E11 LP failed: {res.message}")
    return float(res.x[n_w])


@dataclass
class E11Result:
    rows: list[tuple] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "E11 — VIPs per app: link-balancing flexibility vs switch cost "
            "(the paper's promised 'ongoing work' evaluation)",
            [
                "mean VIPs/app",
                "min-max link util",
                "gain vs k=1",
                "switches @300K apps",
                "extra switches vs k=1",
            ],
        )
        base_util = self.rows[0][1] if self.rows else 1.0
        base_switch = self.rows[0][3] if self.rows else 1
        for row in self.rows:
            t.add_row(*row)
        t.add_note(
            "paper default k=3: most of the balancing gain at a fraction of "
            "the peak switch cost — diminishing returns beyond"
        )
        return t


def run(
    ks: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
    n_apps: int = 300,
    total_gbps: float = 30.0,
    zipf_s: float = 0.8,
) -> E11Result:
    pop = zipf_weights(n_apps, zipf_s)
    demands = pop * total_gbps
    caps = np.asarray(LINK_CAPS)
    result = E11Result()
    base_util = None
    base_switches = None
    for k in ks:
        counts = allocate_vip_counts(pop, mean_vips=k, min_vips=1, max_vips=16)
        vip_links: list[list[int]] = []
        li = 0
        for a in range(n_apps):
            links = []
            for _ in range(int(counts[a])):
                links.append(li % len(caps))
                li += 1
            vip_links.append(links)
        util = optimal_link_balance(demands, vip_links, caps)
        size = switches_needed(300_000, k, 20.0, SwitchLimits())
        if base_util is None:
            base_util, base_switches = util, size.required
        result.rows.append(
            (
                k,
                round(util, 4),
                f"{(base_util - util) / base_util * 100:.1f}%",
                size.required,
                size.required - base_switches,
            )
        )
    return result
