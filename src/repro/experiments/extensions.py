"""Extension experiments for the aspects the paper defers.

* **X1 energy** (Section VI): under a diurnal workload, consolidation
  (stop-idle + parking empty servers) versus spreading, measured in kWh.
* **X2 link costs** (Section IV-A): "control the traffic among the
  different access ISPs according to the business requirements (e.g.,
  different link usage costs)" — cost-aware exposure versus pure
  balance.
* **X3 co-placement** (Section II): multi-tier websites; affinity-aware
  pod bootstrap versus oblivious, measured as the fraction of backend
  traffic crossing pod boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import Table
from repro.core import MegaDataCenter, PlatformConfig
from repro.core.affinity import affinity_groups, cross_pod_backend_gbps, pod_fractions
from repro.core.energy import EnergyAccountant, PowerModel
from repro.dns.policy import CheapestLinkPolicy, InverseUtilizationPolicy
from repro.placement import GreedyController
from repro.sim import RngHub
from repro.workload import WorkloadBuilder
from repro.workload.apps import AppSpec
from repro.workload.demand import ConstantDemand


# ------------------------------------------------------------- X1: energy


@dataclass
class X1Result:
    rows: list[tuple] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "X1 — energy under diurnal load: consolidation vs spreading (Section VI)",
            ["policy", "energy (kWh)", "parked server-hours", "satisfied", "savings"],
        )
        base = self.rows[0][1] if self.rows else 1.0
        for row in self.rows:
            t.add_row(*row, f"{(1 - row[1] / base) * 100:.1f}%")
        t.add_note(
            "idle power dominates the linear server curve, so stopping idle "
            "instances and parking the emptied servers is where the energy is"
        )
        return t


def _run_energy(consolidate: bool, duration_s: float, seed: int) -> tuple:
    apps = WorkloadBuilder(
        n_apps=20,
        total_gbps=12.0,
        diurnal_fraction=1.0,
        rng_hub=RngHub(seed),
    ).build()
    dc = MegaDataCenter(
        apps,
        config=PlatformConfig(epoch_s=300.0),  # 5-min epochs over a day
        n_pods=3,
        servers_per_pod=10,
        n_switches=4,
        pod_controller_factory=lambda: GreedyController(
            stop_idle=consolidate, packing=consolidate
        ),
    )
    accountant = EnergyAccountant(dc.env, PowerModel())

    all_servers = [
        s for m in dc.pod_managers.values() for s in m.pod.servers
    ]
    accountant.sample(all_servers)
    remaining = duration_s
    step = dc.config.epoch_s
    while remaining > 0:
        dc.run(min(step, remaining))
        remaining -= step
        servers = [s for m in dc.pod_managers.values() for s in m.pod.servers]
        if consolidate:
            accountant.park_all_empty(servers)
        accountant.sample(servers)
    return (
        "consolidate + park" if consolidate else "spread (no stop-idle)",
        round(accountant.energy_kwh, 2),
        round(accountant.parked_server_hours, 1),
        round(dc.satisfied.time_average(), 4),
    )


def run_energy(duration_s: float = 86400.0, seed: int = 3) -> X1Result:
    result = X1Result()
    result.rows.append(_run_energy(False, duration_s, seed))
    result.rows.append(_run_energy(True, duration_s, seed))
    return result


# ------------------------------------------------------- X2: link costs


@dataclass
class X2Result:
    rows: list[tuple] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "X2 — cost-aware selective exposure (business requirements, Section IV-A)",
            ["policy", "total cost rate ($/Gbps-s)", "max link util"],
        )
        for row in self.rows:
            t.add_row(*row)
        t.add_note(
            "the cheapest-link policy shifts demand to low-cost ISPs while "
            "the utilization cutoff still prevents overload"
        )
        return t


def run_link_costs(duration_s: float = 1800.0, seed: int = 1) -> X2Result:
    links = (
        ("link-cheap-1", "isp-budget", "AR1", "br-1", 10.0, 1.0),
        ("link-cheap-2", "isp-budget", "AR2", "br-1", 10.0, 1.0),
        ("link-pricey-1", "isp-premium", "AR3", "br-2", 10.0, 4.0),
        ("link-pricey-2", "isp-premium", "AR4", "br-2", 10.0, 4.0),
    )
    result = X2Result()
    for name, policy in (
        ("balance-only", InverseUtilizationPolicy(cutoff=0.85)),
        ("cheapest-link", CheapestLinkPolicy(cutoff=0.85)),
    ):
        apps = WorkloadBuilder(
            n_apps=16, total_gbps=12.0, diurnal_fraction=0.0, rng_hub=RngHub(seed)
        ).build()
        dc = MegaDataCenter(
            apps,
            config=PlatformConfig(),
            n_pods=2,
            servers_per_pod=10,
            n_switches=4,
            links=links,
            exposure_policy=policy,
            proactive_exposure=True,
        )
        dc.run(duration_s)
        result.rows.append(
            (
                name,
                round(dc.internet.total_cost_rate(), 2),
                round(max(dc.link_utilizations().values()), 3),
            )
        )
    return result


# ------------------------------------------------------ X3: co-placement


@dataclass
class X3Result:
    rows: list[tuple] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            "X3 — multi-tier co-placement: affinity-aware vs oblivious bootstrap (Section II)",
            ["bootstrap", "cross-pod backend (Gbps)", "total backend (Gbps)", "cross fraction", "satisfied"],
        )
        for row in self.rows:
            t.add_row(*row)
        t.add_note(
            "logical pods make co-placement a bootstrap policy: tiers of a "
            "website land in the same pods, keeping backend chatter intra-pod"
        )
        return t


def _tiered_workload(n_sites: int, gbps_per_site: float) -> list[AppSpec]:
    """n_sites websites, each a frontend + app-tier + db-tier group."""
    apps = []
    tiers = (("fe", 0.5), ("app", 0.3), ("db", 0.2))
    for s in range(n_sites):
        for tier, share in tiers:
            apps.append(
                AppSpec(
                    f"site{s:02d}-{tier}",
                    1.0 / (3 * n_sites),
                    ConstantDemand(gbps_per_site * share),
                    n_vips=2,
                    affinity_group=f"site{s:02d}",
                )
            )
    return apps


def run_coplacement(
    n_sites: int = 8, gbps_per_site: float = 1.2, duration_s: float = 1200.0
) -> X3Result:
    result = X3Result()
    for affinity_aware in (False, True):
        apps = _tiered_workload(n_sites, gbps_per_site)
        if not affinity_aware:
            # Strip the groups so the bootstrap scatters tiers.
            apps = [
                AppSpec(
                    a.app_id, a.popularity, a.demand, a.vm_cpu, a.vm_mem_gb,
                    a.vm_image_gb, a.gbps_per_cpu, a.min_instances, a.n_vips,
                    affinity_group=None,
                )
                for a in apps
            ]
        dc = MegaDataCenter(
            apps,
            config=PlatformConfig(),
            n_pods=4,
            servers_per_pod=10,
            n_switches=4,
        )
        dc.run(duration_s)
        pods = {name: m.pod for name, m in dc.pod_managers.items()}
        # Measure against the grouped view regardless of bootstrap mode.
        grouped = affinity_groups(_tiered_workload(n_sites, gbps_per_site))
        cross, total = cross_pod_backend_gbps(
            grouped, lambda app: pod_fractions(pods, app), t=dc.env.now
        )
        result.rows.append(
            (
                "affinity-aware" if affinity_aware else "oblivious",
                round(cross, 3),
                round(total, 3),
                round(cross / total, 4) if total else 0.0,
                round(dc.satisfied.current, 4),
            )
        )
    return result
