"""Experiment implementations E1..E12.

Each module exposes a ``run(...)`` returning a result object with a
``table()`` method producing the :class:`repro.analysis.reporting.Table`
the corresponding benchmark prints.  DESIGN.md Section 4 maps every
experiment to the paper claim it reproduces; EXPERIMENTS.md records
paper-vs-measured for each.

Modules are imported lazily so importing one experiment never pays for the
others.
"""

import importlib

__all__ = [
    "e01_architecture",
    "e02_placement_scalability",
    "e03_fabric_sizing",
    "e04_selective_exposure",
    "e05_vip_transfer",
    "e06_server_transfer",
    "e07_dynamic_deployment",
    "e08_agility",
    "e09_viprip_manager",
    "e10_two_layer",
    "e11_vip_tradeoff",
    "e12_quality",
    "e13_failure_recovery",
    "e14_control_plane",
    "e15_parallel_scaling",
    "e16_sharded_control_plane",
]


def __getattr__(name):
    if name in __all__:
        return importlib.import_module(f"repro.experiments.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
