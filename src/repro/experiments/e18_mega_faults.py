"""E18 — fault injection through the unified mega epoch loop.

E17 proved the paper's scale numbers; E18 proves the loop survives the
paper's failure model at that scale.  A scripted :class:`FaultSchedule`
loses whole pods and crashes individual servers mid-run, the
:class:`MegaFaultInjector` replays it against the columnar driver, and the
:class:`RecoveryMonitor` clocks the response: every failure is absorbed by
the next placement epoch, so MTTR is one epoch interval — the mega
analogue of the object model's reconciliation story.

The sharded VIP/RIP control plane is wired in, so each pod loss also
churns real ``del_rip``/``new_rip`` traffic whose journal records the
columnar RIP mirror replays (the ``rip_records`` column); the run ends by
CRC-verifying the mirror against the control-plane authority.  An
:class:`InvariantAuditor` rides the trace bus and checks the K3 vacate
witness of every fault online.

At quick/full scale each app covers ``cover=20`` pods, so the default two
pod losses spill demand to survivors without black-holing anything —
``dropped_gb`` stays 0 and MTTR is the headline metric.  (Black-holed
drop accounting is exercised at tiny scale by the fault test suite, where
killing 3 of 4 pods is affordable.)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.reporting import Table
from repro.core.mega import (
    MegaConfig,
    MegaControlPlaneConfig,
    MegaScaleDriver,
)
from repro.faults.mega import MegaFaultInjector
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.obs.audit import InvariantAuditor
from repro.obs.trace import TraceBus


def default_schedule(
    cfg: MegaConfig,
    pod_faults: int = 2,
    server_faults: int = 4,
) -> FaultSchedule:
    """Scripted fail/repair cycle scaled to *cfg*'s geometry.

    Pod losses land spread ``n_pods // pod_faults`` apart so no app loses
    two covering pods at once; server crashes hit pod-000, which the pod
    losses avoid.  Failures arrive in epochs 1-2, everything is repaired
    at epoch 4 — a 6-epoch run books both MTTR legs and two clean epochs.
    """
    if not 0 < pod_faults < cfg.n_pods:
        raise ValueError("pod_faults must leave at least one pod alive")
    if not 0 <= server_faults <= cfg.servers_per_pod:
        raise ValueError("server_faults exceeds servers_per_pod")
    stride = max(1, cfg.n_pods // pod_faults)
    pods = [f"pod-{(1 + k * stride) % cfg.n_pods:03d}" for k in range(pod_faults)]
    servers = [f"pod-000-s{i:06d}" for i in range(server_faults)]
    e = cfg.epoch_s
    events = (
        [(1 * e, FaultKind.POD_LOSS, p) for p in pods]
        + [(2 * e, FaultKind.SERVER_CRASH, s) for s in servers]
        + [(4 * e, FaultKind.POD_RESTORE, p) for p in pods]
        + [(4 * e, FaultKind.SERVER_RECOVER, s) for s in servers]
    )
    return FaultSchedule([FaultEvent(t, k, tgt) for t, k, tgt in events])


@dataclass
class E18Row:
    epoch: int
    wall_s: float
    vms: int
    pods_down: int
    demand_cpu: float
    satisfied_fraction: float
    dropped_cpu: float
    changes: int
    rip_records: int
    peak_rss_mb: float


@dataclass
class E18Result:
    rows: list[E18Row] = field(default_factory=list)
    config: MegaConfig = field(default_factory=MegaConfig.quick)
    faults_injected: int = 0
    mttr_pod_s: float | None = None
    mttr_server_s: float | None = None
    dropped_gb: float = 0.0
    auditor_ok: bool = True
    rip_verified: bool = True
    rip_records_total: int = 0
    bootstrap_wall_s: float = 0.0
    cpu_count: int = 1

    def table(self) -> Table:
        cfg = self.config
        t = Table(
            "E18 — mega faults: "
            f"{cfg.n_servers} servers / {cfg.n_apps} apps "
            f"({cfg.n_pods} pods, workers={cfg.parallelism})",
            [
                "epoch",
                "wall(s)",
                "vms",
                "down",
                "demand(cpu)",
                "satisfied",
                "dropped(cpu)",
                "changes",
                "rip recs",
                "rss(MB)",
            ],
        )
        for r in self.rows:
            t.add_row(
                r.epoch,
                round(r.wall_s, 3),
                r.vms,
                r.pods_down,
                round(r.demand_cpu, 1),
                f"{r.satisfied_fraction:.4f}",
                round(r.dropped_cpu, 1),
                r.changes,
                r.rip_records,
                round(r.peak_rss_mb, 1),
            )
        mttr = ", ".join(
            f"{cls}={v:.0f}s"
            for cls, v in (
                ("pod", self.mttr_pod_s),
                ("server", self.mttr_server_s),
            )
            if v is not None
        )
        t.add_note(
            f"{self.faults_injected} faults injected; MTTR {mttr or 'n/a'} "
            f"(= one epoch interval: the next placement epoch absorbs "
            f"every failure); demand black-holed {self.dropped_gb:.1f} Gb"
        )
        t.add_note(
            f"invariant auditor {'ok' if self.auditor_ok else 'VIOLATED'}; "
            f"columnar RIP mirror "
            f"{'verified' if self.rip_verified else 'DIVERGED'} against the "
            f"sharded control plane after replaying "
            f"{self.rip_records_total} journal records"
        )
        t.add_note(
            f"bootstrap {self.bootstrap_wall_s:.2f}s; host "
            f"cpu_count={self.cpu_count}; each app covers {cfg.cover} pods, "
            "so isolated pod losses spill demand to survivors instead of "
            "black-holing it"
        )
        return t

    @property
    def satisfied_ok(self) -> bool:
        return all(r.satisfied_fraction >= 0.98 for r in self.rows)

    @property
    def recovered(self) -> bool:
        return bool(self.rows) and self.rows[-1].pods_down == 0


def run(
    full: bool = False,
    epochs: int = 6,
    workers: int = 1,
    seed: int = 0,
    pod_faults: int = 2,
    server_faults: int = 4,
) -> E18Result:
    """Run the fault-injected mega loop and report recovery economics."""
    import time

    cfg = (MegaConfig.full if full else MegaConfig.quick)(
        parallelism=workers, seed=seed
    )
    schedule = default_schedule(
        cfg, pod_faults=pod_faults, server_faults=server_faults
    )
    trace = TraceBus(keep_events=False)
    t0 = time.perf_counter()
    with MegaScaleDriver(
        cfg, trace=trace, control_plane=MegaControlPlaneConfig()
    ) as driver:
        bootstrap_wall = time.perf_counter() - t0
        auditor = InvariantAuditor(columnar=driver).attach(trace)
        injector = MegaFaultInjector(driver, schedule)
        reports = [driver.run_epoch() for _ in range(epochs)]
        rip_verified = driver.bridge.verify() if driver.bridge else True
    monitor = injector.monitor
    pod_tally = monitor.mttr("pod")
    server_tally = monitor.mttr("server")
    result = E18Result(
        config=cfg,
        faults_injected=injector.injected,
        mttr_pod_s=pod_tally.mean if pod_tally else None,
        mttr_server_s=server_tally.mean if server_tally else None,
        dropped_gb=monitor.dropped_gb,
        auditor_ok=auditor.ok,
        rip_verified=rip_verified,
        rip_records_total=sum(r.rip_records for r in reports),
        bootstrap_wall_s=bootstrap_wall,
        cpu_count=os.cpu_count() or 1,
    )
    for r in reports:
        result.rows.append(
            E18Row(
                epoch=r.epoch,
                wall_s=r.wall_s,
                vms=r.vms,
                pods_down=r.pods_down,
                demand_cpu=r.demand_cpu,
                satisfied_fraction=r.satisfied_fraction,
                dropped_cpu=r.dropped_cpu,
                changes=r.changes,
                rip_records=r.rip_records,
                peak_rss_mb=r.peak_rss_mb,
            )
        )
    return result
