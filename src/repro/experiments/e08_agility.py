"""E8 — the agility ladder (Sections IV-E/F).

"One advantage of this knob is that the resultant change can occur
quickly, leading to highly agile resource management.  Indeed, configuring
the load balancing switches takes only several seconds."

We measure, in one controlled environment each, the time from triggering a
knob to its effect being in force:

* K6 RIP weight change — one switch reconfiguration;
* K5 VM slice adjustment — one hypervisor call;
* K4 clone (SnowFlock-style) and K4 live migration;
* K3 server transfer (vacate + handoff);
* K1 selective exposure — instantaneous at the authority, but the *client
  side* converges over ~a TTL (we report the time for 90 % of demand to
  shift);
* naive BGP re-advertisement — convergence-gated.

Plus the K6 conservation check: an intra-pod reweighting leaves every
other pod's share of the VIP exactly unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table
from repro.core.knobs.deployment import AppDeployment
from repro.core.knobs.rip_weights import RipWeightAdjustment
from repro.core.knobs.server_transfer import ServerTransfer
from repro.core.knobs.vm_capacity import VmCapacityAdjustment
from repro.core.pod import Pod
from repro.core.pod_manager import PodManager
from repro.dns.authority import AuthoritativeDNS
from repro.dns.population import FluidDNSModel
from repro.hosts.server import PhysicalServer, ServerSpec
from repro.hosts.vm import VM, VMState
from repro.lbswitch.addresses import PRIVATE_RIP_POOL
from repro.lbswitch.switch import LBSwitch
from repro.network.bgp import BGPAnnouncer
from repro.sim import Environment
from repro.workload.apps import AppSpec
from repro.workload.demand import ConstantDemand


@dataclass
class E8Result:
    rows: list[tuple] = field(default_factory=list)
    conservation_before: dict = field(default_factory=dict)
    conservation_after: dict = field(default_factory=dict)

    def table(self) -> Table:
        t = Table(
            "E8 — knob reaction latency (trigger -> effect in force)",
            ["knob", "mechanism", "latency (s)"],
        )
        for row in self.rows:
            t.add_row(*row)
        t.add_note(
            "paper: weight/slice changes act in seconds (agile); deployment "
            "and BGP-based steering act in minutes"
        )
        t.add_note(
            f"K6 conservation: other-pod share before={self.conservation_before} "
            f"after={self.conservation_after} (unchanged)"
        )
        return t


def _measure(env: Environment, proc) -> float:
    start = env.now
    done = env.process(proc)
    env.run(until=done)
    return env.now - start


def run() -> E8Result:
    result = E8Result()

    # -- K6: one weight change ------------------------------------------------
    env = Environment()
    switch = LBSwitch("lb", env)
    switch.add_vip("vip", "app")
    switch.add_rip("vip", "r-pod1-a")
    switch.add_rip("vip", "r-pod1-b")
    switch.add_rip("vip", "r-pod2-a")
    k6 = RipWeightAdjustment(env, reconfig_s=3.0)
    latency = _measure(env, k6.set_weights(switch, "vip", {"r-pod1-a": 2.0}))
    result.rows.append(("K6", "RIP weight reprogram (switch reconfig)", round(latency, 1)))

    # conservation demo
    pod_of = lambda rip: "pod1" if "pod1" in rip else "pod2"
    result.conservation_before = {
        k: round(v, 4)
        for k, v in RipWeightAdjustment.pod_shares(switch, "vip", pod_of).items()
    }
    pod1_total = switch.entry("vip").rips["r-pod1-a"] + switch.entry("vip").rips["r-pod1-b"]
    latency = _measure(
        env,
        k6.intra_pod_rebalance(
            switch, "vip", pod_of, "pod1",
            {"r-pod1-a": pod1_total * 0.8, "r-pod1-b": pod1_total * 0.2},
        ),
    )
    result.conservation_after = {
        k: round(v, 4)
        for k, v in RipWeightAdjustment.pod_shares(switch, "vip", pod_of).items()
    }

    # -- K5: slice adjustment ------------------------------------------------------
    env = Environment()
    server = PhysicalServer("s", ServerSpec(cpu_capacity=1.0))
    server.attach(VM("v1", "a", 0.5, 4.0, state=VMState.RUNNING))
    server.attach(VM("v2", "b", 0.3, 4.0, state=VMState.RUNNING))
    k5 = VmCapacityAdjustment(env, adjust_latency_s=2.0)
    latency = _measure(env, k5.apply(server, {"a": 0.2, "b": 0.8}))
    result.rows.append(("K5", "hypervisor hot slice resize", round(latency, 1)))

    # -- K1: DNS-side instantaneous; client convergence ~ TTL ------------------------
    env = Environment()
    dns = AuthoritativeDNS(env, default_ttl_s=30.0)
    dns.configure("app", {"v1": 1.0, "v2": 1.0})
    fluid = FluidDNSModel(dns, violator_fraction=0.1)
    fluid.ensure_app("app")
    dns.configure("app", {"v1": 0.0, "v2": 1.0})  # the knob action itself: 0 s
    t, dt = 0.0, 1.0
    while fluid.share_of("app", "v1") > 0.05 and t < 3600:
        fluid.advance(dt)
        t += dt
    result.rows.append(("K1", "DNS weight change (90% of clients shifted)", round(t, 1)))

    # -- K4: clone and migrate ----------------------------------------------------------
    env = Environment()
    pod = Pod("p", 10, 20)
    pod.add_server(PhysicalServer("p-s0"))
    spec = AppSpec("app", 0.1, ConstantDemand(1.0), vm_cpu=0.25, vm_image_gb=4.0)
    k4 = AppDeployment(env, PRIVATE_RIP_POOL(10), fabric_gbps=1.0)
    latency = _measure(env, k4.replicate(spec, pod))
    result.rows.append(("K4", "clone new replica (SnowFlock-style)", round(latency, 1)))

    env = Environment()
    src, dst = Pod("src", 10, 20), Pod("dst", 10, 20)
    src.add_server(PhysicalServer("src-s0"))
    dst.add_server(PhysicalServer("dst-s0"))
    vm = VM("app@src-s0", "app", 0.25, 4.0, image_gb=4.0, state=VMState.RUNNING)
    src.server("src-s0").attach(vm)
    k4 = AppDeployment(env, PRIVATE_RIP_POOL(10), fabric_gbps=1.0)
    latency = _measure(env, k4.migrate(vm, src, dst))
    result.rows.append(("K4", "live migration (4 GB image @ 1 Gbps)", round(latency, 1)))

    # -- K3: vacate + handoff ---------------------------------------------------------------
    env = Environment()
    donor_pod = Pod("donor", 50, 100)
    for i in range(4):
        donor_pod.add_server(PhysicalServer(f"donor-s{i}"))
    donor = PodManager(donor_pod, PRIVATE_RIP_POOL(100))
    donor.run_epoch({"a": 0.5}, {"a": AppSpec("a", 0.1, ConstantDemand(0.5))})
    rcpt_pod = Pod("rcpt", 50, 100)
    rcpt_pod.add_server(PhysicalServer("rcpt-s0"))
    recipient = PodManager(rcpt_pod, PRIVATE_RIP_POOL(100))
    k3 = ServerTransfer(env, handoff_s=30.0)
    latency = _measure(env, k3.execute(donor, recipient, 2))
    result.rows.append(("K3", "vacate + hand-off 2 servers", round(latency, 1)))

    # -- naive BGP baseline --------------------------------------------------------------------
    env = Environment()
    bgp = BGPAnnouncer(env, convergence_s=30.0)
    bgp.advertise_now("vip", "link-a")
    from repro.core.knobs.exposure import NaiveReadvertisement

    naive = NaiveReadvertisement(env, bgp, drain_poll_s=10.0)
    traffic = {"t": 1.0}

    def drain_then_move():
        def decay():
            yield env.timeout(120)
            traffic["t"] = 0.0

        env.process(decay())
        yield from naive.transfer_vip("vip", "link-a", "link-b", lambda: traffic["t"])

    latency = _measure(env, drain_then_move())
    result.rows.append(
        ("naive-bgp", "re-advertise + pad + drain + withdraw", round(latency, 1))
    )
    result.rows.sort(key=lambda r: r[2])
    return result
