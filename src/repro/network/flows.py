"""Flow abstractions shared by the data-plane solver and its users."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.network.maxmin import _incidence, link_loads, weighted_maxmin_fair


@dataclass
class Flow:
    """A fluid flow: identified traffic with a route and a demand ceiling.

    Attributes
    ----------
    key:
        Caller-defined identity (e.g. ``(app_id, vip, rip)``).
    links:
        Indices of the links the flow traverses (in the owning
        :class:`FlowAllocation`'s link table).
    demand_gbps:
        Offered load; ``inf`` for fully elastic flows.
    weight:
        Weighted-fairness weight (K6 RIP weights feed in here).
    """

    key: Hashable
    links: tuple[int, ...]
    demand_gbps: float = float("inf")
    weight: float = 1.0


class FlowAllocation:
    """A solved bandwidth-sharing instance.

    Build with the link capacity table and a list of flows; :meth:`solve`
    computes weighted max–min fair rates and per-link loads.

    The sparse L x F incidence matrix is cached across solves and only
    rebuilt when the route set changes (adding a flow invalidates it;
    mutating demands/weights of existing flows does not) — re-solving the
    same flow set every control epoch is the common case, and the rebuild
    was the dominant cost of small re-solves.  ``incidence_builds`` counts
    the rebuilds for the bench harness.
    """

    def __init__(self, capacities: Sequence[float]):
        self.capacities = np.asarray(capacities, dtype=float)
        self.flows: list[Flow] = []
        self._rates: Optional[np.ndarray] = None
        self._loads: Optional[np.ndarray] = None
        self._A = None  # cached incidence; valid for the current routes
        self._AT = None  # cached F x L transpose of _A
        self.incidence_builds = 0

    def add(self, flow: Flow) -> None:
        self.flows.append(flow)
        self._rates = None
        self._A = None  # route set changed
        self._AT = None

    @property
    def incidence(self):
        """The cached L x F incidence matrix (built on first use)."""
        if self._A is None:
            self._A = _incidence(
                [f.links for f in self.flows], len(self.capacities)
            )
            self.incidence_builds += 1
        return self._A

    @property
    def incidence_t(self):
        """The cached F x L transpose (the saturation-freeze matvec)."""
        if self._AT is None:
            self._AT = self.incidence.T.tocsr()
        return self._AT

    def solve(self) -> np.ndarray:
        routes = [f.links for f in self.flows]
        demands = [f.demand_gbps for f in self.flows]
        weights = [f.weight for f in self.flows]
        A = self.incidence
        self._rates = weighted_maxmin_fair(
            routes,
            self.capacities,
            demands=demands,
            weights=weights,
            incidence=A,
            incidence_t=self.incidence_t,
        )
        self._loads = link_loads(
            routes, self._rates, len(self.capacities), incidence=A
        )
        return self._rates

    @property
    def rates(self) -> np.ndarray:
        if self._rates is None:
            self.solve()
        return self._rates

    @property
    def loads(self) -> np.ndarray:
        if self._loads is None or self._rates is None:
            self.solve()
        return self._loads

    def rate_of(self, key: Hashable) -> float:
        for f, r in zip(self.flows, self.rates):
            if f.key == key:
                return float(r)
        raise KeyError(key)

    def utilizations(self) -> np.ndarray:
        return self.loads / self.capacities

    def satisfied_fraction(self) -> float:
        """Total allocated rate / total finite demand (1.0 if no demand)."""
        dem = np.asarray([f.demand_gbps for f in self.flows])
        finite = np.isfinite(dem)
        total = dem[finite].sum()
        if total <= 0:
            return 1.0
        return float(self.rates[finite].sum() / total)


#: The route-set-caching allocation is also known as a flow *set*: the
#: same flows re-solved epoch after epoch with changing demands/weights.
FlowSet = FlowAllocation
