"""Access connection layer: ISPs, access routers, access links, border routers.

Figure 1 of the paper: the data center reaches the Internet through border
routers connected over *access links* to the *access routers* (ARs) of the
ISPs it buys connectivity from.  Traffic engineering across these links is
knob K1's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim.monitor import UtilizationMonitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


@dataclass
class AccessLink:
    """A link between an ISP access router and a border router.

    Parameters
    ----------
    name:
        Unique name, e.g. ``"link-a"``.
    isp:
        Owning ISP (business constraints attach here).
    access_router:
        Name of the ISP-side access router this link terminates at.
    capacity_gbps:
        Link capacity.
    cost_per_gbps:
        Usage cost — the paper's "different link usage costs" business
        requirement; policies may prefer cheap links.
    """

    name: str
    isp: str
    access_router: str
    capacity_gbps: float
    cost_per_gbps: float = 1.0
    monitor: Optional[UtilizationMonitor] = field(default=None, repr=False)
    #: Operational state; a down link carries no traffic (fault injection).
    up: bool = True

    def attach(self, env: "Environment") -> "AccessLink":
        """Create the utilization monitor once a simulation exists."""
        self.monitor = UtilizationMonitor(env, self.capacity_gbps, self.name)
        return self

    # -- fault injection ----------------------------------------------------
    @property
    def is_up(self) -> bool:
        return self.up

    def fail(self) -> None:
        """Take the link down: demand addressed to it is dropped until the
        DNS re-steer (K1) moves clients away."""
        self.up = False
        if self.monitor is not None:
            self.monitor.set_load(0.0)

    def restore(self) -> None:
        self.up = True

    @property
    def load_gbps(self) -> float:
        return self.monitor.load if self.monitor else 0.0

    @property
    def utilization(self) -> float:
        return self.monitor.utilization if self.monitor else 0.0

    def set_load(self, gbps: float) -> None:
        if self.monitor is None:
            raise RuntimeError(f"{self.name} not attached to an environment")
        self.monitor.set_load(gbps)

    @property
    def cost_rate(self) -> float:
        """Current cost per unit time."""
        return self.load_gbps * self.cost_per_gbps


@dataclass
class BorderRouter:
    """A border router: terminates access links, fans out to all LB switches.

    In the paper's architecture border routers and LB switches are *fully
    interconnected*, which is what makes dynamic VIP transfer (K2) a purely
    internal operation.
    """

    name: str
    access_links: list[AccessLink] = field(default_factory=list)

    def add_link(self, link: AccessLink) -> None:
        self.access_links.append(link)

    @property
    def total_capacity_gbps(self) -> float:
        return sum(l.capacity_gbps for l in self.access_links)


class InternetSide:
    """The whole access connection layer: ISPs -> access links -> borders."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.links: dict[str, AccessLink] = {}
        self.borders: dict[str, BorderRouter] = {}

    def add_border(self, name: str) -> BorderRouter:
        if name in self.borders:
            raise ValueError(f"duplicate border router {name}")
        br = BorderRouter(name)
        self.borders[name] = br
        return br

    def add_access_link(
        self,
        name: str,
        isp: str,
        access_router: str,
        border: str,
        capacity_gbps: float,
        cost_per_gbps: float = 1.0,
    ) -> AccessLink:
        if name in self.links:
            raise ValueError(f"duplicate access link {name}")
        link = AccessLink(name, isp, access_router, capacity_gbps, cost_per_gbps)
        link.attach(self.env)
        self.links[name] = link
        self.borders[border].add_link(link)
        return link

    def link(self, name: str) -> AccessLink:
        return self.links[name]

    def utilizations(self) -> np.ndarray:
        return np.asarray([l.utilization for l in self.links.values()])

    def imbalance(self) -> float:
        """max/mean utilization across access links (1.0 = perfectly even)."""
        u = self.utilizations()
        mean = u.mean()
        if mean <= 0:
            return 1.0
        return float(u.max() / mean)

    def total_cost_rate(self) -> float:
        return sum(l.cost_rate for l in self.links.values())

    def overloaded(self, threshold: float = 1.0) -> list[AccessLink]:
        return [l for l in self.links.values() if l.utilization > threshold]

    def links_down(self) -> list[AccessLink]:
        return [l for l in self.links.values() if not l.is_up]
