"""Flow-level data plane.

Traffic is modelled as fluid flows: within a control epoch each flow gets a
max–min fair share of every link it crosses.  Control-plane events (DNS
exposure changes, VIP transfers, weight updates) change the flow set or the
routing; the data plane then re-solves bandwidth sharing.  This is the
standard fluid approximation for load-balancing studies and is exactly the
granularity at which the paper's claims live.
"""

from repro.network.flows import Flow, FlowAllocation, FlowSet
from repro.network.maxmin import maxmin_fair, weighted_maxmin_fair
from repro.network.links import AccessLink, BorderRouter, InternetSide
from repro.network.bgp import BGPAnnouncer, RouteUpdateLog
from repro.network.fabric import FabricModel

__all__ = [
    "Flow",
    "FlowAllocation",
    "FlowSet",
    "maxmin_fair",
    "weighted_maxmin_fair",
    "AccessLink",
    "BorderRouter",
    "InternetSide",
    "BGPAnnouncer",
    "RouteUpdateLog",
    "FabricModel",
]
