"""Max–min fair bandwidth allocation (progressive filling / water-filling).

Vectorized with NumPy + a sparse flow-link incidence matrix, per the
HPC-guide rule of vectorizing the hot loop: each iteration of progressive
filling saturates at least one link, so the loop runs at most ``L`` times
with O(nnz) vector work per iteration, instead of the naive O(F·L) per step.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import sparse


def _incidence(routes: Sequence[Sequence[int]], n_links: int) -> sparse.csr_matrix:
    """Build the L x F 0/1 incidence matrix from per-flow link index lists."""
    rows: list[int] = []
    cols: list[int] = []
    for f, links in enumerate(routes):
        for l in links:
            if not 0 <= l < n_links:
                raise IndexError(f"flow {f} uses unknown link {l}")
            rows.append(l)
            cols.append(f)
    data = np.ones(len(rows), dtype=float)
    return sparse.csr_matrix(
        (data, (rows, cols)), shape=(n_links, len(routes))
    )


def maxmin_fair(
    routes: Sequence[Sequence[int]],
    capacities: Sequence[float],
    demands: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Max–min fair rates for flows over capacitated links.

    Parameters
    ----------
    routes:
        Per-flow list of link indices the flow traverses.  A flow with an
        empty route is only limited by its demand.
    capacities:
        Per-link capacity (> 0).
    demands:
        Optional per-flow demand ceiling (``inf`` = elastic).

    Returns
    -------
    Per-flow allocated rates.  Invariants (property-tested):

    * no link carries more than its capacity;
    * no flow exceeds its demand;
    * every flow is *bottlenecked*: it is either at its demand, or it
      crosses a saturated link on which no other flow gets a higher rate.
    """
    return weighted_maxmin_fair(routes, capacities, demands=demands, weights=None)


def weighted_maxmin_fair(
    routes: Sequence[Sequence[int]],
    capacities: Sequence[float],
    demands: Optional[Sequence[float]] = None,
    weights: Optional[Sequence[float]] = None,
    incidence: Optional[sparse.csr_matrix] = None,
    incidence_t: Optional[sparse.csr_matrix] = None,
) -> np.ndarray:
    """Weighted max–min fairness: link shares are proportional to weights.

    With all weights equal this reduces to plain max–min fairness.  Used by
    the LB switches: RIP weight adjustment (knob K6) reshapes these weights.

    ``incidence`` lets a caller that re-solves the same route set (only
    demands/weights change between control epochs) pass the prebuilt L x F
    matrix instead of paying the O(nnz) rebuild — see
    :class:`repro.network.flows.FlowAllocation`.  ``incidence_t`` is the
    matching prebuilt F x L transpose (used to freeze flows on saturated
    links with one matvec); it is derived from ``incidence`` when absent.

    Everything per-flow is derived from the incidence matrix — the
    ``routes`` lists are only consulted to *build* it — so the whole loop
    is sparse matvecs with no per-link/per-flow Python iteration.
    :func:`progressive_filling_dense` is the readable per-link loop
    reference this is verified bit-identical against.
    """
    n_flows = len(routes)
    caps = np.asarray(capacities, dtype=float)
    n_links = caps.shape[0]
    if (caps <= 0).any():
        raise ValueError("link capacities must be positive")

    if demands is None:
        dem = np.full(n_flows, np.inf)
    else:
        dem = np.asarray(demands, dtype=float)
        if dem.shape != (n_flows,):
            raise ValueError("demands must match number of flows")
        if (dem < 0).any():
            raise ValueError("demands must be non-negative")

    if weights is None:
        w = np.ones(n_flows)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != (n_flows,):
            raise ValueError("weights must match number of flows")
        if (w <= 0).any():
            raise ValueError("weights must be positive")

    if n_flows == 0:
        return np.zeros(0)

    if incidence is not None:
        A = incidence
        if A.shape != (n_links, n_flows):
            raise ValueError(
                f"incidence must be {n_links}x{n_flows}, got {A.shape}"
            )
    else:
        A = _incidence(routes, n_links)  # L x F
    if incidence_t is not None:
        AT = incidence_t
        if AT.shape != (n_flows, n_links):
            raise ValueError(
                f"incidence_t must be {n_flows}x{n_links}, got {AT.shape}"
            )
    else:
        AT = A.T.tocsr()

    rates = np.zeros(n_flows)
    active = np.ones(n_flows, dtype=bool)  # not yet frozen
    remaining = caps.copy()

    # Flows with no links (empty incidence column) are limited only by
    # their demand.
    routeless = A.getnnz(axis=0) == 0
    if routeless.any():
        rates[routeless] = dem[routeless]
        if not np.isfinite(dem[routeless]).all():
            raise ValueError("routeless flow with infinite demand")
        active[routeless] = False

    for _ in range(n_links + n_flows + 1):
        if not active.any():
            break
        act = active.astype(float)
        # Total active weight per link.
        link_weight = A @ (w * act)
        used = link_weight > 1e-15
        if not used.any():
            # Remaining active flows cross no capacity-bearing link:
            # they get their demand.
            rates[active] = dem[active]
            break
        # Fair *per-weight* increment each used link can still give.
        increment = np.full(n_links, np.inf)
        increment[used] = remaining[used] / link_weight[used]
        # Per-flow cap from demand: the per-weight increment that would
        # bring the flow exactly to its demand.
        flow_room = np.full(n_flows, np.inf)
        finite = active & np.isfinite(dem)
        flow_room[finite] = (dem[finite] - rates[finite]) / w[finite]

        link_min = increment.min()
        flow_min = flow_room[active].min() if active.any() else np.inf
        step = min(link_min, flow_min)
        if not np.isfinite(step):
            raise ValueError("unbounded allocation: elastic flow with no links")
        step = max(step, 0.0)

        # Advance every active flow by step * weight.
        delta = step * w * act
        rates += delta
        remaining -= A @ delta
        remaining = np.maximum(remaining, 0.0)

        # Freeze flows that reached their demand.
        done = active & (rates >= dem - 1e-12)
        active &= ~done
        # Freeze flows crossing a saturated link: one transpose matvec
        # (counts of saturated links per flow) instead of slicing rows
        # out of the CSR matrix each iteration.
        saturated = used & (remaining <= 1e-12)
        if saturated.any():
            on_saturated = (AT @ saturated.astype(float)) > 0
            active &= ~on_saturated
    else:  # pragma: no cover - loop bound is a theoretical guarantee
        raise RuntimeError("progressive filling failed to converge")

    return rates


def progressive_filling_dense(
    routes: Sequence[Sequence[int]],
    capacities: Sequence[float],
    demands: Optional[Sequence[float]] = None,
    weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Reference progressive filling with explicit per-link Python loops.

    This is the readable textbook formulation the sparse implementation is
    tested against: every matvec of :func:`weighted_maxmin_fair` becomes a
    loop over per-link (flow, multiplicity) lists, accumulating in the same
    ascending-index order a canonical CSR matvec uses — so the two produce
    **bit-identical** rates (``np.array_equal``, not ``allclose``), which
    is what lets golden traces stay byte-stable whichever path computed
    them.  Quadratic bookkeeping; tests only.
    """
    n_flows = len(routes)
    caps = np.asarray(capacities, dtype=float)
    n_links = caps.shape[0]
    if (caps <= 0).any():
        raise ValueError("link capacities must be positive")
    if demands is None:
        dem = np.full(n_flows, np.inf)
    else:
        dem = np.asarray(demands, dtype=float)
    if weights is None:
        w = np.ones(n_flows)
    else:
        w = np.asarray(weights, dtype=float)
    if n_flows == 0:
        return np.zeros(0)

    # Per-link and per-flow (index, multiplicity) lists in ascending index
    # order with duplicates merged — exactly CSR canonical form for A and
    # its transpose.
    by_link: list[dict] = [dict() for _ in range(n_links)]
    by_flow: list[dict] = [dict() for _ in range(n_flows)]
    for f, links in enumerate(routes):
        for l in links:
            if not 0 <= l < n_links:
                raise IndexError(f"flow {f} uses unknown link {l}")
            by_link[l][f] = by_link[l].get(f, 0.0) + 1.0
            by_flow[f][l] = by_flow[f].get(l, 0.0) + 1.0
    link_entries = [sorted(d.items()) for d in by_link]
    flow_entries = [sorted(d.items()) for d in by_flow]

    def links_dot(x: np.ndarray) -> np.ndarray:  # A @ x
        out = np.zeros(n_links)
        for l, entries in enumerate(link_entries):
            acc = 0.0
            for f, mult in entries:
                acc += mult * x[f]
            out[l] = acc
        return out

    rates = np.zeros(n_flows)
    active = np.ones(n_flows, dtype=bool)
    remaining = caps.copy()

    routeless = np.asarray(
        [len(entries) == 0 for entries in flow_entries], dtype=bool
    )
    if routeless.any():
        rates[routeless] = dem[routeless]
        if not np.isfinite(dem[routeless]).all():
            raise ValueError("routeless flow with infinite demand")
        active[routeless] = False

    for _ in range(n_links + n_flows + 1):
        if not active.any():
            break
        act = active.astype(float)
        link_weight = links_dot(w * act)
        used = link_weight > 1e-15
        if not used.any():
            rates[active] = dem[active]
            break
        increment = np.full(n_links, np.inf)
        increment[used] = remaining[used] / link_weight[used]
        flow_room = np.full(n_flows, np.inf)
        finite = active & np.isfinite(dem)
        flow_room[finite] = (dem[finite] - rates[finite]) / w[finite]

        link_min = increment.min()
        flow_min = flow_room[active].min() if active.any() else np.inf
        step = min(link_min, flow_min)
        if not np.isfinite(step):
            raise ValueError("unbounded allocation: elastic flow with no links")
        step = max(step, 0.0)

        delta = step * w * act
        rates += delta
        remaining -= links_dot(delta)
        remaining = np.maximum(remaining, 0.0)

        done = active & (rates >= dem - 1e-12)
        active &= ~done
        saturated = used & (remaining <= 1e-12)
        if saturated.any():
            for f in range(n_flows):
                if active[f] and any(
                    saturated[l] for l, _ in flow_entries[f]
                ):
                    active[f] = False
    else:  # pragma: no cover - loop bound is a theoretical guarantee
        raise RuntimeError("progressive filling failed to converge")

    return rates


def link_loads(
    routes: Sequence[Sequence[int]],
    rates: Sequence[float],
    n_links: int,
    incidence: Optional[sparse.csr_matrix] = None,
) -> np.ndarray:
    """Per-link load implied by per-flow rates."""
    A = incidence if incidence is not None else _incidence(routes, n_links)
    return np.asarray(A @ np.asarray(rates, dtype=float)).ravel()
