"""The internal L2/L3 switching fabric between LB switches and servers.

Section III-B's argument: on a modern topology (fat-tree/VL2/PortLand) any
LB switch can include any server in its load-balancing groups because
host-pair bandwidth is guaranteed; on a legacy oversubscribed tree the
bandwidth to a remote server is unpredictable, which is why traditional
designs kept LB switches next to their servers.  :class:`FabricModel`
captures exactly that distinction plus the external/internal traffic split
(external ≈ 20 % of total per Greenberg et al.) used to argue the LB layer
is not a bottleneck.
"""

from __future__ import annotations

from typing import Optional

from repro.topology.analysis import host_pair_guarantee, oversubscription_ratio
from repro.topology.base import Topology


class FabricModel:
    """Bandwidth guarantees of the server-side fabric.

    Parameters
    ----------
    topology:
        The underlying fabric topology.
    external_traffic_fraction:
        Fraction of total DC traffic that crosses the Internet boundary
        (and therefore the LB layer).  The paper takes ~0.2 from [8].
    """

    def __init__(self, topology: Topology, external_traffic_fraction: float = 0.2):
        if not 0 < external_traffic_fraction <= 1:
            raise ValueError("external_traffic_fraction must be in (0, 1]")
        self.topology = topology
        self.external_traffic_fraction = external_traffic_fraction
        self._guarantee = host_pair_guarantee(topology)
        self._oversub = oversubscription_ratio(topology)

    @property
    def is_flat(self) -> bool:
        """True if any switch can reach any server at guaranteed bandwidth
        (the property required to pool LB switches at the border)."""
        return self._guarantee >= 0.999

    @property
    def pair_guarantee(self) -> float:
        """Guaranteed fraction of NIC rate between any host pair under
        worst-case concurrent load."""
        return self._guarantee

    @property
    def oversubscription(self) -> float:
        return self._oversub

    def guaranteed_gbps(self, host: str) -> float:
        """Bandwidth any LB switch can count on towards *host*."""
        return self.topology.host_uplink_gbps(host) * self._guarantee

    def lb_layer_load_gbps(self, total_traffic_gbps: float) -> float:
        """Traffic the LB layer must process, given *total* DC traffic.

        Only external (enter/leave) traffic crosses the LB layer; all
        intra-DC traffic flows below it (Section III-B).
        """
        return total_traffic_gbps * self.external_traffic_fraction

    def reachable_servers(self, lb_attach_host: Optional[str] = None) -> int:
        """How many servers an LB switch can safely load-balance over.

        On a flat fabric: all of them.  On a legacy tree an LB switch is
        restricted to the subtree with predictable bandwidth — we
        approximate that as the servers within the attachment aggregation
        group (the compartmentalization the paper criticises).
        """
        hosts = self.topology.hosts
        if self.is_flat or lb_attach_host is None:
            return len(hosts)
        group = self.topology.node(lb_attach_host).group
        return sum(1 for h in hosts if h.group == group)
