"""BGP route advertisement model for VIPs at access routers.

The paper contrasts two ways to move client traffic between access links:

* the **naive** way — withdraw the VIP's route from the overloaded link's
  access router and re-advertise it elsewhere (with AS-path padding first to
  drain gracefully).  Slow and route-churn heavy.
* **selective VIP exposure** (knob K1) — routes stay put; DNS steers demand.
  Route updates only happen in infrequent periodic reclamation of unused
  VIPs.

This module provides the route table, update accounting, and the timing of
convergence, so benchmark E4 can compare both mechanisms quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


@dataclass
class RouteUpdateLog:
    """Counts route updates by kind (the churn the paper wants to avoid)."""

    advertisements: int = 0
    withdrawals: int = 0
    paddings: int = 0

    @property
    def total(self) -> int:
        return self.advertisements + self.withdrawals + self.paddings


@dataclass(frozen=True)
class Advertisement:
    vip: str
    link: str  # access link name
    padded: bool = False


class BGPAnnouncer:
    """Route state of the platform's VIPs at the ISP access routers.

    Timing model: an advertisement or withdrawal becomes effective after
    ``convergence_s`` (eBGP propagation to the relevant AR); AS-path padding
    also converges in ``convergence_s`` and makes the route least-preferred
    (no *new* connections arrive through it).
    """

    def __init__(self, env: "Environment", convergence_s: float = 30.0):
        self.env = env
        self.convergence_s = convergence_s
        self.log = RouteUpdateLog()
        # vip -> {link_name: Advertisement}
        self._routes: dict[str, dict[str, Advertisement]] = {}

    # -- queries -----------------------------------------------------------
    def links_for(self, vip: str, include_padded: bool = False) -> list[str]:
        ads = self._routes.get(vip, {})
        return sorted(
            l for l, ad in ads.items() if include_padded or not ad.padded
        )

    def is_advertised(self, vip: str, link: str) -> bool:
        return link in self._routes.get(vip, {})

    def all_vips(self) -> list[str]:
        return sorted(self._routes)

    # -- mutations (each costs one route update) ----------------------------
    def advertise(self, vip: str, link: str):
        """Announce *vip* through *link*; yields until converged."""
        self.log.advertisements += 1
        yield self.env.timeout(self.convergence_s)
        self._routes.setdefault(vip, {})[link] = Advertisement(vip, link)

    def withdraw(self, vip: str, link: str):
        """Withdraw *vip* from *link*; yields until converged."""
        self.log.withdrawals += 1
        yield self.env.timeout(self.convergence_s)
        ads = self._routes.get(vip, {})
        ads.pop(link, None)
        if not ads:
            self._routes.pop(vip, None)

    def pad(self, vip: str, link: str):
        """Advertise a padded (deprioritised) AS path for *vip* at *link*.

        The paper's graceful-drain step: existing connections keep working,
        new connections prefer other routes.
        """
        self.log.paddings += 1
        yield self.env.timeout(self.convergence_s)
        ads = self._routes.get(vip)
        if ads and link in ads:
            ads[link] = Advertisement(vip, link, padded=True)

    # -- synchronous variants for non-simulated (setup) use ------------------
    def advertise_now(self, vip: str, link: str, count_update: bool = False) -> None:
        """Install a route instantly (initial configuration, not churn)."""
        if count_update:
            self.log.advertisements += 1
        self._routes.setdefault(vip, {})[link] = Advertisement(vip, link)

    def withdraw_now(self, vip: str, link: str, count_update: bool = True) -> None:
        if count_update:
            self.log.withdrawals += 1
        ads = self._routes.get(vip, {})
        ads.pop(link, None)
        if not ads:
            self._routes.pop(vip, None)
