"""``repro bench`` — pinned performance workloads with JSON trajectories.

Runs fixed-seed placement and network workloads and writes
``BENCH_placement.json`` / ``BENCH_network.json`` (wall times, speedups vs
serial, solver iteration counts) so every later change has a baseline to
beat.  Three roles:

* **measure** — the E2-scale pod-epoch workload (>= 8 pods, per-pod Tang
  controllers, drifting demand) through the serial and parallel engines,
  Tang cold vs warm starts, the greedy/distributed solvers, and max-min
  fairness with and without the cached incidence matrix;
* **verify** — the parallel engine's placements must be byte-identical to
  serial (the run fails otherwise);
* **gate** — ``--baseline DIR`` compares guarded wall-time metrics against
  a committed baseline and fails when any regresses more than
  ``--max-regression`` (CI runs this on the quick fixtures).

Quick fixtures are a subset of the full run (the full run includes them),
so a committed full baseline also covers the CI quick lane's keys.  Wall
times are hardware-dependent; speedups near 1.0 on single-core runners are
expected and recorded honestly (``cpu_count`` is in the JSON).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Optional

import numpy as np

from repro.network.flows import Flow, FlowSet
from repro.network.maxmin import weighted_maxmin_fair
from repro.perf.engine import PlacementEngine, PlacementTask
from repro.perf.rss import peak_rss_mb
from repro.placement import (
    DistributedController,
    GreedyController,
    PlacementProblem,
    TangController,
)

SCHEMA = 2
#: Metrics guarded by the regression gate (wall times, plus the mega
#: suite's per-epoch wall and peak RSS).
GUARDED_METRICS = (
    "serial_wall_s",
    "parallel_wall_s",
    "cold_wall_s",
    "warm_wall_s",
    "cached_wall_s",
    "wall_s",
    "off_wall_s",
    "noop_wall_s",
    "on_wall_s",
    "wall_per_epoch_s",
    "steer_wall_s",
    "peak_rss_mb",
)
#: Unit suffix per guarded metric; anything not listed is wall-clock
#: seconds.  Keeps regression messages unambiguous now that the gate
#: covers more than wall times.
METRIC_UNITS = {"peak_rss_mb": "MB"}
#: Metrics whose baseline comparison is meaningless across machines with
#: different core counts (the stale-baseline trap: a baseline recorded on
#: a 1-core runner makes any parallel wall time look like a win or a
#: regression depending on which side has more cores).  When a workload's
#: recorded ``cpu_count`` differs from the baseline's, these are skipped
#: with a warning instead of gated.
CPU_SENSITIVE_METRICS = ("parallel_wall_s",)

BENCH_FILES = {
    "placement": "BENCH_placement.json",
    "network": "BENCH_network.json",
    "controlplane": "BENCH_controlplane.json",
}
#: The mega-scale lane writes its own file (run via ``repro mega``, not
#: ``repro bench`` — full scale is minutes of bootstrap work, not a
#: pinned micro-workload).
MEGA_FILE = "BENCH_mega.json"
DATAPLANE_FILE = "BENCH_dataplane.json"


def _drift(demands: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Multiplicative lognormal drift, renormalized to constant total —
    the small epoch-over-epoch delta warm starts exploit."""
    factor = rng.lognormal(0.0, 0.25, size=demands.shape)
    out = demands * factor
    return out * demands.sum() / out.sum()


def _demand_sequence(base: PlacementProblem, epochs: int, seed: int):
    rng = np.random.default_rng(seed + 1)
    seq = [base.app_cpu_demand]
    for _ in range(epochs - 1):
        seq.append(_drift(seq[-1], rng))
    return seq


def _run_pod_epochs(
    base: PlacementProblem,
    pods: list[PlacementProblem],
    demand_seq,
    engine: PlacementEngine,
):
    """Run the epoch sequence through *engine* with fresh per-pod Tang
    controllers; returns (wall_s, placements, solver stats)."""
    from repro.experiments.e02_placement_scalability import split_into_pods

    controllers = [TangController() for _ in pods]
    placements = [p.current.copy() for p in pods]
    signatures = []
    tracing = engine.trace is not None and engine.trace.enabled
    t0 = time.perf_counter()
    for epoch, demand in enumerate(demand_seq):
        full = PlacementProblem(
            server_cpu=base.server_cpu,
            server_mem=base.server_mem,
            app_cpu_demand=demand,
            app_mem=base.app_mem,
            current=np.vstack(placements),
        )
        epoch_pods = split_into_pods(full, pods[0].n_servers)
        ctx = {"t": 60.0 * epoch, "epoch": str(epoch)} if tracing else None
        tasks = [
            PlacementTask(
                key=f"pod-{i}", problem=p, controller=controllers[i],
                trace_ctx=ctx,
            )
            for i, p in enumerate(epoch_pods)
        ]
        solutions = engine.solve_batch(tasks)
        placements = [s.placement for s in solutions]
        signatures.append(
            [(s.placement.tobytes(), s.load.tobytes()) for s in solutions]
        )
    wall = time.perf_counter() - t0
    # Counters are read off the driver-side controllers: under a parallel
    # engine they are written back from the worker-resident twins after
    # every batch, so warm_seeded is observable in both modes.
    stats = {
        "maxflow_calls": sum(c.maxflow_calls for c in controllers),
        "warm_seeded": sum(c.warm_seeded for c in controllers),
        "delta_tasks": engine.delta_tasks,
        "full_tasks": engine.full_tasks,
        "bytes_shipped_delta": engine.bytes_shipped_delta,
        "bytes_shipped_full": engine.bytes_shipped_full,
    }
    return wall, signatures, stats


def bench_pod_epoch(
    n_servers: int, pod_size: int, epochs: int, workers: int, seed: int = 0
) -> tuple[str, dict]:
    """The E2-scale parallel pod-epoch workload: serial vs *workers*."""
    from repro.experiments.e02_placement_scalability import (
        make_instance,
        split_into_pods,
    )

    base = make_instance(n_servers, seed=seed)
    pods = split_into_pods(base, pod_size)
    demand_seq = _demand_sequence(base, epochs, seed)
    with PlacementEngine(1) as serial:
        serial_wall, serial_sigs, serial_stats = _run_pod_epochs(
            base, pods, demand_seq, serial
        )
    with PlacementEngine(workers) as parallel:
        parallel_wall, parallel_sigs, parallel_stats = _run_pod_epochs(
            base, pods, demand_seq, parallel
        )
        pool_spawns = parallel.pool_spawns
    wid = (
        f"pod_epoch[servers={n_servers},pods={len(pods)},"
        f"epochs={epochs},workers={workers}]"
    )
    return wid, {
        "servers": n_servers,
        "apps": base.n_apps,
        "pods": len(pods),
        "epochs": epochs,
        "workers": workers,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / max(parallel_wall, 1e-9), 3),
        "identical": serial_sigs == parallel_sigs,
        "epoch_serial_s": round(serial_wall / epochs, 4),
        "epoch_parallel_s": round(parallel_wall / epochs, 4),
        "solver_iterations": serial_stats["maxflow_calls"],
        "warm_seeded": serial_stats["warm_seeded"],
        "warm_seeded_parallel": parallel_stats["warm_seeded"],
        "pool_spawns": pool_spawns,
        "delta_tasks": parallel_stats["delta_tasks"],
        "full_tasks": parallel_stats["full_tasks"],
        "bytes_shipped_delta": parallel_stats["bytes_shipped_delta"],
        "bytes_shipped_full": parallel_stats["bytes_shipped_full"],
    }


def bench_tang_warm(n_servers: int, epochs: int, seed: int = 0) -> tuple[str, dict]:
    """Tang cold start vs warm start over drifting-demand epochs."""
    from repro.experiments.e02_placement_scalability import make_instance

    base = make_instance(n_servers, seed=seed)
    demand_seq = _demand_sequence(base, epochs, seed)
    results = {}
    satisfied = {}
    for label, warm in (("cold", False), ("warm", True)):
        controller = TangController(warm_start=warm)
        placement = base.current.copy()
        sats = []
        t0 = time.perf_counter()
        for demand in demand_seq:
            problem = PlacementProblem(
                server_cpu=base.server_cpu,
                server_mem=base.server_mem,
                app_cpu_demand=demand,
                app_mem=base.app_mem,
                current=placement,
            )
            sol = controller.solve(problem)
            placement = sol.placement
            sats.append(float(sol.satisfied().sum()))
        results[label] = {
            "wall_s": time.perf_counter() - t0,
            "maxflow_calls": controller.maxflow_calls,
            "warm_seeded": controller.warm_seeded,
        }
        satisfied[label] = sats
    delta = max(
        abs(c - w) for c, w in zip(satisfied["cold"], satisfied["warm"])
    )
    wid = f"tang_warm[servers={n_servers},epochs={epochs}]"
    return wid, {
        "servers": n_servers,
        "epochs": epochs,
        "cold_wall_s": round(results["cold"]["wall_s"], 4),
        "warm_wall_s": round(results["warm"]["wall_s"], 4),
        "warm_speedup": round(
            results["cold"]["wall_s"] / max(results["warm"]["wall_s"], 1e-9), 3
        ),
        "cold_maxflow_calls": results["cold"]["maxflow_calls"],
        "warm_maxflow_calls": results["warm"]["maxflow_calls"],
        "warm_seeded": results["warm"]["warm_seeded"],
        "satisfied_delta": float(delta),
    }


def bench_solver(kind: str, n_servers: int, seed: int = 0) -> tuple[str, dict]:
    """Single-solve micro-bench of the greedy / distributed controllers."""
    from repro.experiments.e02_placement_scalability import make_instance

    problem = make_instance(n_servers, seed=seed)
    if kind == "greedy":
        controller = GreedyController()
    else:
        controller = DistributedController(rng=np.random.default_rng(seed))
    t0 = time.perf_counter()
    sol = controller.solve(problem)
    wall = time.perf_counter() - t0
    wid = f"{kind}_solve[servers={n_servers}]"
    return wid, {
        "servers": n_servers,
        "apps": problem.n_apps,
        "wall_s": round(wall, 4),
        "satisfied": round(float(sol.satisfied().sum()), 3),
    }


def bench_maxmin(
    n_flows: int, n_links: int, resolves: int, seed: int = 0
) -> tuple[str, dict]:
    """Max-min fairness re-solves: rebuilt vs cached incidence matrix.

    The cached path passes both ``incidence`` and ``incidence_t`` — the
    same pair :meth:`FlowSet.solve` reuses — so the bench measures what
    production callers actually pay.  Expect the speedup to *shrink* as
    ``n_flows`` grows: the build is O(nnz) once, while progressive
    filling iterates one sparse matvec per saturation round, so the
    amortized build+transpose share falls (measured ~3% of a flows=1000
    solve, ~2% at flows=4000 — i.e. the honest speedup is 1.0x-1.1x, not
    a headline number).  The regression gate guards ``cached_wall_s``
    against the recorded baseline rather than a fixed speedup ratio for
    exactly this reason.
    """
    rng = np.random.default_rng(seed)
    capacities = rng.uniform(5.0, 20.0, n_links)
    routes = [
        sorted(rng.choice(n_links, size=int(rng.integers(1, 4)), replace=False))
        for _ in range(n_flows)
    ]
    demands = rng.uniform(0.1, 2.0, n_flows)
    weights = rng.uniform(0.5, 2.0, n_flows)

    flowset = FlowSet(capacities)
    for i, route in enumerate(routes):
        flowset.add(
            Flow(key=i, links=tuple(route), demand_gbps=demands[i], weight=weights[i])
        )
    A = flowset.incidence  # built once, reused for every re-solve
    AT = flowset.incidence_t

    # The cache's win is a few percent at these sizes — smaller than the
    # drift of a busy runner over one 20-resolve block, which biases any
    # block-at-a-time comparison toward whichever path ran in the
    # friendlier window.  Alternate the two paths solve by solve so both
    # sample identical machine conditions, and keep the best of 3 rounds.
    cold_wall = cached_wall = float("inf")
    for _ in range(3):
        cold_t = cached_t = 0.0
        for _ in range(resolves):
            t0 = time.perf_counter()
            cold_rates = weighted_maxmin_fair(
                routes, capacities, demands=demands, weights=weights
            )
            cold_t += time.perf_counter() - t0
            t0 = time.perf_counter()
            cached_rates = weighted_maxmin_fair(
                routes,
                capacities,
                demands=demands,
                weights=weights,
                incidence=A,
                incidence_t=AT,
            )
            cached_t += time.perf_counter() - t0
        cold_wall = min(cold_wall, cold_t)
        cached_wall = min(cached_wall, cached_t)

    wid = f"maxmin[flows={n_flows},links={n_links},resolves={resolves}]"
    return wid, {
        "flows": n_flows,
        "links": n_links,
        "resolves": resolves,
        "cold_wall_s": round(cold_wall, 4),
        "cached_wall_s": round(cached_wall, 4),
        "speedup": round(cold_wall / max(cached_wall, 1e-9), 3),
        "identical": bool(np.array_equal(cold_rates, cached_rates)),
        "incidence_builds": flowset.incidence_builds,
    }


def bench_obs(
    n_apps: int,
    epochs: int,
    workers: int,
    seed: int = 0,
    trace_out: Optional[str] = None,
) -> tuple[str, dict]:
    """Observability overhead + trace determinism on a datacenter run.

    Times the same seeded epoch workload three ways — no facade at all
    (``off``), the disabled no-op facade (``noop``), full metrics +
    tracing + online auditing (``on``) — and additionally asserts that
    serial and parallel engines produce byte-identical trace digests.
    ``overhead_ok`` is the acceptance gate: full instrumentation must
    stay within 5% of the uninstrumented wall time, estimated from
    position-balanced interleaved rounds with best-of-3 retry on noisy
    runners (see the measurement comment below).
    """
    from repro.core.datacenter import MegaDataCenter
    from repro.obs import Observability, TraceBus
    from repro.sim.rng import RngHub
    from repro.workload.generator import WorkloadBuilder

    duration_s = epochs * 60.0  # default PlatformConfig().epoch_s

    def one_run(obs, parallelism=1, audit=False):
        import gc

        apps = WorkloadBuilder(
            n_apps=n_apps, total_gbps=n_apps / 2.0, rng_hub=RngHub(seed)
        ).build()
        dc = MegaDataCenter(
            apps,
            n_pods=4,
            servers_per_pod=64,
            n_switches=4,
            obs=obs,
            audit=audit,
            parallelism=parallelism,
        )
        # Collect the previous run's garbage now so its GC debt is not
        # charged to this run's timed section.
        gc.collect()
        t0 = time.perf_counter()
        dc.run(duration_s)
        wall = time.perf_counter() - t0
        dc.close()
        return wall

    # One untimed warm-up run, then 9 interleaved rounds with the mode
    # order rotated so every mode occupies every within-round position
    # exactly 3 times (a position-balanced design: on CPU-quota'd
    # runners the later runs of a round are systematically slower, and
    # an unbalanced rotation turns that into fake overhead).  Each
    # estimate compares per-mode *sums* over all rounds: position
    # effects cancel by symmetry and machine-level throughput drift
    # hits every mode's sum equally, where a min-of-N comparison across
    # the session would keep both biases.  Timing noise on shared
    # runners only ever *inflates* an estimate, so when one lands over
    # the gate the measurement is retried (up to 3 estimates) and the
    # smallest is reported.
    one_run(None)
    factories = {
        "off": lambda: None,
        "noop": Observability.disabled,
        "on": lambda: Observability(trace=TraceBus(keep_events=False)),
    }
    order = list(factories)

    def estimate():
        walls = {mode: float("inf") for mode in factories}
        totals = {mode: 0.0 for mode in factories}
        for r in range(9):
            for mode in order[r % 3:] + order[: r % 3]:
                wall = one_run(factories[mode]())
                walls[mode] = min(walls[mode], wall)
                totals[mode] += wall
        return (
            (totals["on"] / totals["off"] - 1.0) * 100.0,
            (totals["noop"] / totals["off"] - 1.0) * 100.0,
            walls,
        )

    attempts = 0
    overhead_pct, noop_pct, walls = float("inf"), float("inf"), {}
    while attempts < 3:
        attempts += 1
        oh, noop, w = estimate()
        if oh < overhead_pct:
            overhead_pct, noop_pct, walls = oh, noop, w
        if overhead_pct <= 5.0:
            break
    off_wall, noop_wall, on_wall = walls["off"], walls["noop"], walls["on"]

    # Determinism witness: same seed, serial vs parallel engine, digests
    # must match byte-for-byte.  The serial run also produces the JSONL
    # artifact the CI lane uploads.
    obs_serial = Observability(trace=TraceBus(path=trace_out))
    one_run(obs_serial, parallelism=1, audit=True)
    obs_serial.close()
    obs_parallel = Observability()
    one_run(obs_parallel, parallelism=workers, audit=True)
    serial_digest = obs_serial.trace.digest
    parallel_digest = obs_parallel.trace.digest

    wid = f"obs_overhead[apps={n_apps},epochs={epochs}]"
    return wid, {
        "apps": n_apps,
        "epochs": epochs,
        "off_wall_s": round(off_wall, 4),
        "noop_wall_s": round(noop_wall, 4),
        "on_wall_s": round(on_wall, 4),
        "noop_overhead_pct": round(noop_pct, 2),
        "overhead_pct": round(overhead_pct, 2),
        "overhead_ok": overhead_pct <= 5.0,
        "estimate_attempts": attempts,
        "trace_events": obs_serial.trace.count,
        "trace_digest": serial_digest,
        "identical": serial_digest == parallel_digest,
    }


def bench_sharded_controlplane(
    shards: tuple[int, ...], n_requests: int, n_switches: int, seed: int = 0
) -> tuple[str, dict]:
    """Sharded control-plane storm: simulated throughput vs shard count.

    The guarded wall time is the host-side cost of draining the storm
    through all shard counts; the scaling claim itself is gated through
    ``monotonic_ok``, which is simulated-time and therefore deterministic
    across machines.
    """
    from repro.experiments.e16_sharded_control_plane import run as run_e16

    t0 = time.perf_counter()
    result = run_e16(
        seed=seed,
        shards=shards,
        n_requests=n_requests,
        n_switches=n_switches,
        integrated=False,
    )
    wall = time.perf_counter() - t0
    cases = sorted(result.throughput, key=lambda c: c.n_shards)
    metrics = {
        "shards": list(shards),
        "requests": n_requests,
        "wall_s": round(wall, 4),
        "monotonic_ok": result.throughput_monotonic,
        "chaos_converged": all(c.converged for c in result.chaos),
        "conflicts": sum(c.conflicts for c in result.chaos),
        "rollbacks": sum(c.rollbacks for c in result.chaos),
    }
    for case in cases:
        metrics[f"rps_shards_{case.n_shards}"] = round(case.throughput_rps, 3)
        metrics[f"speedup_shards_{case.n_shards}"] = round(
            case.speedup_vs_serial, 3
        )
    wid = f"sharded_controlplane[shards={','.join(map(str, shards))},requests={n_requests}]"
    return wid, metrics


# ------------------------------------------------------------------ suites

#: (workload fn, kwargs) per suite; quick fixtures run in both modes so the
#: committed full baseline covers the CI quick lane's keys.
QUICK_PLACEMENT = [
    (bench_pod_epoch, dict(n_servers=160, pod_size=20, epochs=2, workers=4)),
    (bench_tang_warm, dict(n_servers=100, epochs=3)),
    (bench_solver, dict(kind="greedy", n_servers=200)),
    (bench_solver, dict(kind="distributed", n_servers=200)),
    (bench_obs, dict(n_apps=120, epochs=15, workers=2, trace_out=None)),
]
FULL_PLACEMENT = QUICK_PLACEMENT + [
    (bench_pod_epoch, dict(n_servers=400, pod_size=50, epochs=3, workers=4)),
    (bench_tang_warm, dict(n_servers=160, epochs=4)),
]
QUICK_NETWORK = [
    (bench_maxmin, dict(n_flows=1000, n_links=100, resolves=20)),
]
FULL_NETWORK = QUICK_NETWORK + [
    (bench_maxmin, dict(n_flows=4000, n_links=300, resolves=20)),
]
QUICK_CONTROLPLANE = [
    (
        bench_sharded_controlplane,
        dict(shards=(1, 2, 4), n_requests=160, n_switches=8),
    ),
]
FULL_CONTROLPLANE = QUICK_CONTROLPLANE + [
    (
        bench_sharded_controlplane,
        dict(shards=(1, 2, 4, 8), n_requests=320, n_switches=16),
    ),
]


def run_suite(
    suite: str,
    quick: bool,
    workers: Optional[int] = None,
    out_dir: Optional[str] = None,
) -> dict:
    if suite == "placement":
        fixtures = QUICK_PLACEMENT if quick else FULL_PLACEMENT
    elif suite == "controlplane":
        fixtures = QUICK_CONTROLPLANE if quick else FULL_CONTROLPLANE
    else:
        fixtures = QUICK_NETWORK if quick else FULL_NETWORK
    workloads = {}
    for fn, kwargs in fixtures:
        if workers is not None and "workers" in kwargs:
            kwargs = {**kwargs, "workers": workers}
        if "trace_out" in kwargs and out_dir is not None:
            kwargs = {
                **kwargs,
                "trace_out": str(pathlib.Path(out_dir) / "TRACE_obs.jsonl"),
            }
        wid, metrics = fn(**kwargs)
        # Recorded per workload (not just per file) so the regression
        # gate can tell, workload by workload, whether the baseline came
        # from a machine where parallel wall times are comparable.
        metrics["cpu_count"] = os.cpu_count()
        # Process-lifetime high-water mark at the time this workload
        # finished; within one suite run it is monotone across workloads.
        metrics["peak_rss_mb"] = round(peak_rss_mb(), 1)
        workloads[wid] = metrics
    return {
        "schema": SCHEMA,
        "suite": suite,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "workloads": workloads,
    }


# ------------------------------------------------------- regression gating


def compare_to_baseline(
    current: dict, baseline: dict, max_ratio: float
) -> tuple[list[str], list[str]]:
    """Guarded wall-time metrics of workloads present in both runs.

    Returns ``(violations, skipped)``: human-readable regression
    violations (empty = no regression) and warnings for CPU-sensitive
    metrics that were *not* gated because the workload's recorded
    ``cpu_count`` differs from the baseline's (comparing a parallel wall
    time across machines with different core counts gates nothing real).
    A baseline workload with no recorded ``cpu_count`` (schema 1) skips
    the same way — it predates per-workload recording.
    """
    violations = []
    skipped = []
    base_workloads = baseline.get("workloads", {})
    for wid, metrics in current.get("workloads", {}).items():
        base = base_workloads.get(wid)
        if base is None:
            continue
        cores_differ = metrics.get("cpu_count") != base.get("cpu_count")
        for key in GUARDED_METRICS:
            if key not in metrics or key not in base:
                continue
            if cores_differ and key in CPU_SENSITIVE_METRICS:
                skipped.append(
                    f"{wid} {key}: baseline cpu_count={base.get('cpu_count')} "
                    f"!= current cpu_count={metrics.get('cpu_count')}; "
                    "speedup gate skipped"
                )
                continue
            old, new = float(base[key]), float(metrics[key])
            if old > 0 and new > old * max_ratio:
                unit = METRIC_UNITS.get(key, "s")
                violations.append(
                    f"{wid}: metric '{key}' regressed: {new:.4f} {unit} vs "
                    f"baseline {old:.4f} {unit} "
                    f"(x{new / old:.2f} > allowed x{max_ratio:.2f})"
                )
    return violations, skipped


def speedup_gate(result: dict, min_speedup: float) -> tuple[list[str], list[str]]:
    """Gate parallel workloads on absolute speedup vs serial.

    Returns ``(failures, skipped)``.  A workload is gated only when the
    machine it ran on has at least as many cores as the workload used
    workers — demanding a 4-worker speedup from a 1-core container is the
    stale-baseline trap in absolute form, so those are skipped with a
    warning instead.
    """
    failures = []
    skipped = []
    for wid, metrics in result.get("workloads", {}).items():
        if "speedup" not in metrics or "workers" not in metrics:
            continue
        cores = metrics.get("cpu_count") or 0
        if cores < metrics["workers"]:
            skipped.append(
                f"{wid}: cpu_count={cores} < workers={metrics['workers']}; "
                f"min-speedup gate skipped"
            )
            continue
        if float(metrics["speedup"]) < min_speedup:
            failures.append(
                f"{wid}: speedup {metrics['speedup']} < required {min_speedup}"
            )
    return failures, skipped


# ----------------------------------------------------------------- trends


def trend_lines(results_dir: pathlib.Path) -> list[str]:
    """Summarize the benchmark suite's machine-readable tables (the .json
    files ``benchmarks/conftest.emit`` writes next to each .txt): every
    wall-time-ish column's last-row value, as a cross-run trend anchor."""
    lines = []
    if not results_dir.is_dir():
        return lines
    for path in sorted(results_dir.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue
        for table in payload.get("tables", []):
            cols, rows = table.get("columns", []), table.get("rows", [])
            if not rows:
                continue
            timings = [
                f"{c}={rows[-1][i]}"
                for i, c in enumerate(cols)
                if "(s)" in c or c.endswith("_s")
            ]
            if timings:
                lines.append(f"{payload.get('name', path.stem)}: {', '.join(timings)}")
    return lines


# -------------------------------------------------------------------- CLI


def cmd_bench(
    quick: bool,
    out_dir: str,
    workers: Optional[int],
    baseline: Optional[str],
    max_regression: float,
    results_dir: Optional[str] = None,
    out=None,
    min_speedup: Optional[float] = None,
) -> int:
    import sys

    out = out if out is not None else sys.stdout
    out_path = pathlib.Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    mode = "quick" if quick else "full"
    print(
        f"repro bench ({mode}, cpu_count={os.cpu_count()}) — "
        "pinned placement + network workloads",
        file=out,
    )
    failures = []
    for suite, filename in BENCH_FILES.items():
        result = run_suite(suite, quick, workers=workers, out_dir=str(out_path))
        (out_path / filename).write_text(json.dumps(result, indent=2) + "\n")
        print(f"\n[{suite}] -> {out_path / filename}", file=out)
        for wid, metrics in result["workloads"].items():
            shown = {
                k: v
                for k, v in metrics.items()
                if k in GUARDED_METRICS
                or k
                in (
                    "speedup",
                    "warm_speedup",
                    "identical",
                    "satisfied_delta",
                    "overhead_pct",
                    "overhead_ok",
                    "monotonic_ok",
                    "chaos_converged",
                )
            }
            print(f"  {wid}: {shown}", file=out)
            if metrics.get("identical") is False:
                failures.append(f"{wid}: parallel result differs from serial")
            if metrics.get("overhead_ok") is False:
                failures.append(
                    f"{wid}: observability overhead "
                    f"{metrics.get('overhead_pct')}% exceeds 5%"
                )
            if metrics.get("monotonic_ok") is False:
                failures.append(
                    f"{wid}: sharded throughput not monotonic in shard count"
                )
            if metrics.get("chaos_converged") is False:
                failures.append(
                    f"{wid}: a chaos case failed to converge to clean drift"
                )
        if min_speedup is not None:
            gate_failures, gate_skipped = speedup_gate(result, min_speedup)
            for s in gate_skipped:
                print(f"  WARNING {s}", file=out)
            for g in gate_failures:
                print(f"  SPEEDUP {g}", file=out)
            failures.extend(gate_failures)
        if baseline is not None:
            base_file = pathlib.Path(baseline) / filename
            if base_file.is_file():
                base = json.loads(base_file.read_text())
                violations, skipped = compare_to_baseline(
                    result, base, max_regression
                )
                for s in skipped:
                    print(f"  WARNING {s}", file=out)
                for v in violations:
                    print(f"  REGRESSION {v}", file=out)
                failures.extend(violations)
            else:
                print(f"  (no baseline {base_file}; skipping gate)", file=out)
    trends = trend_lines(
        pathlib.Path(results_dir)
        if results_dir is not None
        else pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    )
    if trends:
        print("\nbenchmark-suite trend anchors (benchmarks/results/*.json):", file=out)
        for line in trends:
            print(f"  {line}", file=out)
    if failures:
        print(f"\nbench FAILED ({len(failures)} problem(s))", file=out)
        return 1
    print("\nbench ok", file=out)
    return 0


# --------------------------------------------------------------- mega lane


def bench_mega(
    quick: bool, epochs: int = 2, workers: int = 1, seed: int = 0
) -> tuple[str, dict]:
    """Run the bounded-memory mega driver and report scale + cost.

    ``wall_per_epoch_s`` is the steady-state epoch wall (epochs after the
    first, which pays the one-time full controller ship); ``peak_rss_mb``
    is the process high-water mark — the acceptance metric the paper-scale
    run is gated on.
    """
    from repro.core.mega import MegaConfig, MegaScaleDriver

    cfg = (MegaConfig.quick if quick else MegaConfig.full)(
        parallelism=workers, seed=seed
    )
    t0 = time.perf_counter()
    with MegaScaleDriver(cfg) as driver:
        bootstrap_wall = time.perf_counter() - t0
        reports = driver.run(epochs)
    steady = reports[1:] if len(reports) > 1 else reports
    wid = (
        f"mega[pods={cfg.n_pods},servers={cfg.n_servers},"
        f"apps={cfg.n_apps},workers={workers}]"
    )
    metrics = {
        "epochs": len(reports),
        "vms": reports[-1].vms,
        "bootstrap_wall_s": round(bootstrap_wall, 4),
        "wall_s": round(sum(r.wall_s for r in reports), 4),
        "first_epoch_wall_s": round(reports[0].wall_s, 4),
        "wall_per_epoch_s": round(
            sum(r.wall_s for r in steady) / len(steady), 4
        ),
        "peak_rss_mb": round(peak_rss_mb(), 1),
        "bytes_shipped": sum(r.bytes_shipped for r in reports),
        "delta_tasks": sum(r.delta_tasks for r in reports),
        "full_tasks": sum(r.full_tasks for r in reports),
        "satisfied_fraction_min": round(
            min(r.satisfied_fraction for r in reports), 6
        ),
        "changes_last_epoch": reports[-1].changes,
        "delta_shipping_engaged": (
            len(reports) < 2 or reports[-1].full_tasks == 0
        ),
    }
    return wid, metrics


def bench_mega_faults(
    quick: bool, epochs: int = 6, workers: int = 1, seed: int = 0
) -> tuple[str, dict]:
    """The fault lane: E18's scripted fail/repair cycle through the
    unified loop (columnar pods + sharded control plane + injector).

    The headline metrics are recovery economics — MTTR per fault class
    (one epoch interval by construction: the next placement epoch absorbs
    every failure) and demand black-holed — plus the same wall/RSS cost
    envelope the fault-free lane gates.
    """
    from repro.experiments import e18_mega_faults as e18

    t0 = time.perf_counter()
    result = e18.run(full=not quick, epochs=epochs, workers=workers, seed=seed)
    wall = time.perf_counter() - t0
    cfg = result.config
    rows = result.rows
    wid = (
        f"mega_faults[pods={cfg.n_pods},servers={cfg.n_servers},"
        f"apps={cfg.n_apps},workers={workers}]"
    )
    metrics = {
        "epochs": len(rows),
        "vms": rows[-1].vms,
        "bootstrap_wall_s": round(result.bootstrap_wall_s, 4),
        "wall_s": round(wall, 4),
        "wall_per_epoch_s": round(
            sum(r.wall_s for r in rows[1:]) / max(1, len(rows) - 1), 4
        ),
        "peak_rss_mb": round(peak_rss_mb(), 1),
        "faults_injected": result.faults_injected,
        "mttr_pod_s": result.mttr_pod_s,
        "mttr_server_s": result.mttr_server_s,
        "dropped_gb": round(result.dropped_gb, 4),
        "pods_down_max": max(r.pods_down for r in rows),
        "recovered": result.recovered,
        "satisfied_fraction_min": round(
            min(r.satisfied_fraction for r in rows), 6
        ),
        "rip_records_total": result.rip_records_total,
        "auditor_ok": result.auditor_ok,
        "rip_mirror_verified": result.rip_verified,
    }
    return wid, metrics


def cmd_mega(
    quick: bool,
    out_dir: str,
    workers: int,
    epochs: int,
    baseline: Optional[str],
    max_regression: float,
    max_rss_mb: float,
    faults: bool = False,
    out=None,
) -> int:
    """Run the mega-scale lane, write ``BENCH_mega.json``, gate RSS/trends."""
    import sys

    out = out if out is not None else sys.stdout
    out_path = pathlib.Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    mode = "quick" if quick else "full"
    print(
        f"repro mega ({mode}, cpu_count={os.cpu_count()}, "
        f"workers={workers}, epochs={epochs})",
        file=out,
    )
    wid, metrics = bench_mega(quick, epochs=epochs, workers=workers)
    metrics["cpu_count"] = os.cpu_count()
    lanes = [(wid, metrics)]
    if faults:
        # The fault lane needs the whole fail/repair cycle: failures in
        # epochs 1-2, repairs at epoch 4, so at least 6 epochs.
        fwid, fmetrics = bench_mega_faults(
            quick, epochs=max(epochs, 6), workers=workers
        )
        fmetrics["cpu_count"] = os.cpu_count()
        lanes.append((fwid, fmetrics))
    # Merge with an existing file so one committed baseline can carry both
    # the quick (CI smoke) and full (paper-scale) workload entries — the
    # workload id encodes the scale, so they never collide.
    dest = out_path / MEGA_FILE
    workloads = {}
    if dest.is_file():
        try:
            workloads = dict(json.loads(dest.read_text()).get("workloads", {}))
        except (json.JSONDecodeError, OSError):
            workloads = {}
    for lane_wid, lane_metrics in lanes:
        workloads[lane_wid] = lane_metrics
    result = {
        "schema": SCHEMA,
        "suite": "mega",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "workloads": workloads,
    }
    dest.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\n[mega] -> {dest}", file=out)
    show = (
        "vms",
        "epochs",
        "bootstrap_wall_s",
        "first_epoch_wall_s",
        "wall_per_epoch_s",
        "peak_rss_mb",
        "bytes_shipped",
        "satisfied_fraction_min",
        "delta_shipping_engaged",
        "faults_injected",
        "mttr_pod_s",
        "mttr_server_s",
        "dropped_gb",
        "pods_down_max",
        "recovered",
        "rip_records_total",
        "auditor_ok",
        "rip_mirror_verified",
    )
    for lane_wid, lane_metrics in lanes:
        print(f"  {lane_wid}:", file=out)
        for key in show:
            if key in lane_metrics:
                print(f"    {key} = {lane_metrics[key]}", file=out)
    failures = []
    for lane_wid, lane_metrics in lanes:
        if lane_metrics["peak_rss_mb"] > max_rss_mb:
            failures.append(
                f"{lane_wid}: metric 'peak_rss_mb' exceeds budget: "
                f"{lane_metrics['peak_rss_mb']:.1f} MB > allowed "
                f"{max_rss_mb:.1f} MB"
            )
        if lane_metrics["satisfied_fraction_min"] < 0.98:
            failures.append(
                f"{lane_wid}: satisfied_fraction_min "
                f"{lane_metrics['satisfied_fraction_min']} < 0.98"
            )
    if epochs >= 2 and not metrics["delta_shipping_engaged"]:
        failures.append(
            f"{wid}: delta shipping never engaged (full ships after epoch 0)"
        )
    if faults:
        fwid, fmetrics = lanes[1]
        if not fmetrics["recovered"]:
            failures.append(f"{fwid}: fleet did not recover (pods still down)")
        if not fmetrics["auditor_ok"]:
            failures.append(f"{fwid}: invariant auditor reported violations")
        if not fmetrics["rip_mirror_verified"]:
            failures.append(
                f"{fwid}: columnar RIP mirror diverged from authority"
            )
        if fmetrics["mttr_pod_s"] is None or fmetrics["mttr_server_s"] is None:
            failures.append(f"{fwid}: MTTR never recorded for a fault class")
    if baseline is not None:
        base_file = pathlib.Path(baseline) / MEGA_FILE
        if base_file.is_file():
            base = json.loads(base_file.read_text())
            violations, skipped = compare_to_baseline(
                result, base, max_regression
            )
            for s in skipped:
                print(f"  WARNING {s}", file=out)
            for v in violations:
                print(f"  REGRESSION {v}", file=out)
            failures.extend(violations)
        else:
            print(f"  (no baseline {base_file}; skipping gate)", file=out)
    if failures:
        print(f"\nmega FAILED ({len(failures)} problem(s))", file=out)
        for f in failures:
            print(f"  {f}", file=out)
        return 1
    print("\nmega ok", file=out)
    return 0


# ---------------------------------------------------------- dataplane lane


def bench_dataplane(
    quick: bool, epochs: int = 4, workers: int = 1, seed: int = 0
) -> tuple[str, dict]:
    """The traffic data plane lane: E19's steered epochs as a pinned
    workload.

    Headline metrics are steering throughput (``requests_per_s`` over the
    columnar path's own wall, excluding placement) and peak RSS; at quick
    scale the object data plane races the same stream so the committed
    baseline records the measured ``speedup_vs_object`` the PR gates on.
    """
    from repro.experiments import e19_dataplane as e19

    t0 = time.perf_counter()
    result = e19.run(full=not quick, epochs=epochs, workers=workers, seed=seed)
    wall = time.perf_counter() - t0
    cfg, sc = result.config, result.steering
    rows = result.rows
    wid = (
        f"dataplane[pods={cfg.n_pods},servers={cfg.n_servers},"
        f"apps={cfg.n_apps},req={sc.requests_per_epoch}]"
    )
    metrics = {
        "epochs": len(rows),
        "requests": result.requests_total,
        "bootstrap_wall_s": round(result.bootstrap_wall_s, 4),
        "wall_s": round(wall, 4),
        "steer_wall_s": round(result.steer_wall_total_s, 4),
        "requests_per_s": round(result.requests_per_s, 1),
        "dns_hit_rate": round(
            sum(r.dns_hit_rate * r.requests for r in rows)
            / max(result.requests_total, 1),
            4,
        ),
        "opened": sum(r.opened for r in rows),
        "rejected": sum(r.rejected for r in rows),
        "unserved": sum(r.unserved for r in rows),
        "dropped": sum(r.dropped for r in rows),
        "alive_final": rows[-1].alive if rows else 0,
        "knobs_fired": dict(sorted(result.knob_events.items())),
        "auditor_ok": result.auditor_ok,
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }
    if result.speedup_vs_object is not None:
        metrics["object_requests_per_s"] = round(
            result.object_requests_per_s, 1
        )
        metrics["speedup_vs_object"] = round(result.speedup_vs_object, 2)
    return wid, metrics


def cmd_dataplane(
    quick: bool,
    out_dir: str,
    workers: int,
    epochs: int,
    baseline: Optional[str],
    max_regression: float,
    max_rss_mb: float,
    min_speedup: float = 10.0,
    out=None,
) -> int:
    """Run the data-plane lane, write ``BENCH_dataplane.json``, gate
    throughput, the quick-scale object-path speedup, and peak RSS."""
    import sys

    out = out if out is not None else sys.stdout
    out_path = pathlib.Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    mode = "quick" if quick else "full"
    print(
        f"repro dataplane ({mode}, cpu_count={os.cpu_count()}, "
        f"workers={workers}, epochs={epochs})",
        file=out,
    )
    wid, metrics = bench_dataplane(quick, epochs=epochs, workers=workers)
    metrics["cpu_count"] = os.cpu_count()
    # Same merge pattern as the mega lane: quick and full entries share
    # one committed baseline file, keyed by the scale-encoding workload id.
    dest = out_path / DATAPLANE_FILE
    workloads = {}
    if dest.is_file():
        try:
            workloads = dict(json.loads(dest.read_text()).get("workloads", {}))
        except (json.JSONDecodeError, OSError):
            workloads = {}
    workloads[wid] = metrics
    result = {
        "schema": SCHEMA,
        "suite": "dataplane",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "workloads": workloads,
    }
    dest.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\n[dataplane] -> {dest}", file=out)
    print(f"  {wid}:", file=out)
    for key in (
        "epochs",
        "requests",
        "requests_per_s",
        "steer_wall_s",
        "dns_hit_rate",
        "opened",
        "rejected",
        "unserved",
        "dropped",
        "knobs_fired",
        "object_requests_per_s",
        "speedup_vs_object",
        "auditor_ok",
        "peak_rss_mb",
    ):
        if key in metrics:
            print(f"    {key} = {metrics[key]}", file=out)
    failures = []
    if metrics["opened"] + metrics["rejected"] + metrics["unserved"] != (
        metrics["requests"]
    ):
        failures.append(f"{wid}: steering outcome counters do not balance")
    if not metrics["auditor_ok"]:
        failures.append(f"{wid}: invariant auditor reported violations")
    if metrics["peak_rss_mb"] > max_rss_mb:
        failures.append(
            f"{wid}: metric 'peak_rss_mb' exceeds budget: "
            f"{metrics['peak_rss_mb']:.1f} MB > allowed {max_rss_mb:.1f} MB"
        )
    if "speedup_vs_object" in metrics and (
        metrics["speedup_vs_object"] < min_speedup
    ):
        failures.append(
            f"{wid}: speedup_vs_object {metrics['speedup_vs_object']:.2f}x "
            f"< required {min_speedup:.1f}x"
        )
    if baseline is not None:
        base_file = pathlib.Path(baseline) / DATAPLANE_FILE
        if base_file.is_file():
            base = json.loads(base_file.read_text())
            violations, skipped = compare_to_baseline(
                result, base, max_regression
            )
            for s in skipped:
                print(f"  WARNING {s}", file=out)
            for v in violations:
                print(f"  REGRESSION {v}", file=out)
            failures.extend(violations)
        else:
            print(f"  (no baseline {base_file}; skipping gate)", file=out)
    if failures:
        print(f"\ndataplane FAILED ({len(failures)} problem(s))", file=out)
        for f in failures:
            print(f"  {f}", file=out)
        return 1
    print("\ndataplane ok", file=out)
    return 0
