"""Parallel pod-epoch placement engine.

The engine executes a *batch* of independent placement solves — one per
pod — either in-process (``parallelism=1``, the exact serial fallback) or
across a persistent :class:`~concurrent.futures.ProcessPoolExecutor`.
Three properties make the parallel path a drop-in replacement for the
serial loop:

* **Pure solve stage.**  A :class:`PlacementTask` carries everything a
  worker needs (problem matrices, the controller, an optional RNG seed);
  :func:`solve_placement_task` has no side effects on the platform, so it
  can run anywhere.
* **Deterministic merge order.**  ``solve_batch`` returns solutions in
  task order regardless of which worker finished first, and controllers
  that use randomness are re-seeded per task from an explicit seed, so a
  parallel run is bit-identical to ``parallelism=1``.
* **Persistent workers.**  The pool is created once and reused across
  epochs (``pool_spawns`` counts creations), amortizing process start-up
  over the run.

Controllers that keep cross-epoch solver state (e.g. the warm-starting
:class:`~repro.placement.tang.TangController`) expose ``export_state`` /
``import_state``; the engine round-trips that state through the worker so
warm starts survive the process boundary.
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.placement.problem import PlacementProblem, PlacementSolution


@dataclass
class PlacementTask:
    """One pod's pure solve stage.

    Attributes
    ----------
    key:
        Caller identity (pod name); batches are merged in task order, so
        the key is informational.
    problem:
        The placement instance to solve.
    controller:
        Any object with ``solve(problem) -> PlacementSolution``.  Must be
        picklable for ``parallelism > 1``.
    seed:
        When set and the controller has an ``rng`` attribute, the worker
        replaces it with ``default_rng(seed)`` before solving — the hook
        that keeps randomized controllers identical across parallelism
        levels.
    trace_ctx:
        Opaque trace context (e.g. ``{"t": ..., "epoch": ...}``) carried
        through the solve stage and echoed back with the result, so trace
        events about a solution can be stamped with the *originating*
        epoch even when the solve ran in another process.
    """

    key: str
    problem: PlacementProblem
    controller: object
    seed: Optional[int] = None
    trace_ctx: Optional[dict] = None


def derive_seed(key: str, epoch) -> int:
    """Stable per-(pod, epoch) seed: identical across processes and runs
    (unlike ``hash()``, which is salted per interpreter)."""
    return zlib.crc32(f"{key}:{epoch}".encode()) & 0x7FFFFFFF


def solve_placement_task(task: PlacementTask):
    """Run one task's solve stage; returns ``(solution, solver_state,
    trace_ctx)``.

    Module-level so it is picklable by the process pool.  ``solver_state``
    is whatever the controller's ``export_state`` returns (``None`` for
    stateless controllers) and is re-imported into the main-process
    controller by the engine.  ``trace_ctx`` is the task's context echoed
    back verbatim — that round-trip is what lets trace events survive the
    process-pool boundary.
    """
    controller = task.controller
    if task.seed is not None and hasattr(controller, "rng"):
        controller.rng = np.random.default_rng(task.seed)
    solution = controller.solve(task.problem)
    export = getattr(controller, "export_state", None)
    state = export() if callable(export) else None
    return solution, state, task.trace_ctx


class PlacementEngine:
    """Fan independent placement solves across persistent worker processes.

    Parameters
    ----------
    parallelism:
        Worker count; defaults to ``os.cpu_count()``.  ``1`` solves
        in-process with the exact same code path (no pool is ever
        created), so it is the serial fallback the parallel path must
        match bit-for-bit.
    """

    def __init__(self, parallelism: Optional[int] = None):
        self.parallelism = (
            int(parallelism) if parallelism is not None else (os.cpu_count() or 1)
        )
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Optional trace bus (set by the datacenter facade).  Dispatch
        #: and merge events never mention worker identity or pool width,
        #: so traces are identical across parallelism levels.
        self.trace = None
        #: Batches dispatched (one per epoch in the datacenter loop).
        self.batches = 0
        #: Individual pod solves executed.
        self.tasks_solved = 0
        #: Pool creations — stays at <= 1 per engine lifetime, which is
        #: the point: workers persist across epochs.
        self.pool_spawns = 0

    @property
    def is_parallel(self) -> bool:
        return self.parallelism > 1

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.parallelism)
            self.pool_spawns += 1
        return self._pool

    def solve_batch(
        self, tasks: Iterable[PlacementTask]
    ) -> list[PlacementSolution]:
        """Solve every task; results are returned in task order.

        The serial and parallel paths share :func:`solve_placement_task`,
        including the export/import round-trip of solver state, so the
        only difference is *where* the solve runs.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        self.batches += 1
        self.tasks_solved += len(tasks)
        tracing = self.trace is not None and self.trace.enabled
        if tracing and tasks[0].trace_ctx is not None:
            ctx = tasks[0].trace_ctx
            self.trace.emit(
                "pool.dispatch", t=ctx.get("t", 0.0),
                epoch=ctx.get("epoch"), tasks=[t.key for t in tasks],
            )
        if self.parallelism == 1 or len(tasks) == 1:
            results = [solve_placement_task(t) for t in tasks]
        else:
            results = list(self._ensure_pool().map(solve_placement_task, tasks))
        solutions: list[PlacementSolution] = []
        for task, (solution, state, ctx) in zip(tasks, results):
            if state is not None:
                import_state = getattr(task.controller, "import_state", None)
                if callable(import_state):
                    import_state(state)
            if tracing and ctx is not None:
                # CRCs of the solution arrays: cheap witnesses that the
                # parallel merge is bit-identical to the serial solve.
                # ascontiguousarray is a no-op for the (contiguous)
                # solver output and lets crc32 read the buffer directly
                # instead of through a tobytes copy.
                self.trace.emit(
                    "pool.merge", t=ctx.get("t", 0.0), key=task.key,
                    epoch=ctx.get("epoch"),
                    placement_crc=zlib.crc32(
                        np.ascontiguousarray(solution.placement)
                    ),
                    load_crc=zlib.crc32(np.ascontiguousarray(solution.load)),
                )
            solutions.append(solution)
        return solutions

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "PlacementEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
