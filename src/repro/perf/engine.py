"""Parallel pod-epoch placement engine with worker-resident pod state.

The engine executes a *batch* of independent placement solves — one per
pod — either in-process (``parallelism=1``, the exact serial fallback) or
across persistent worker processes.  Version 2 of the engine (the
"actually fast" rebuild) replaces the ship-everything protocol of the
original with three mechanisms:

* **Worker-resident pod state.**  Each pod is pinned to one worker
  process for the engine's lifetime (``ProcessPoolExecutor`` shards of
  one process each, so routing is exact).  The worker keeps the pod's
  controller — including cross-epoch solver state such as the Tang
  warm-start graph skeleton — and the structural problem arrays
  (capacities, per-app memory, last placement) alive between epochs.
  Controllers ship to a worker exactly once; warm starts therefore
  survive the process boundary without ever pickling a graph again.

* **Delta shipping.**  Per epoch the driver classifies each task against
  its mirror of what the pod's worker holds: when only the demand vector
  changed (the common drifting-demand case) it ships just that array; a
  changed server set, app set, capacity, or placement (fault paths, K3
  transfers) invalidates the resident state and re-ships the full
  problem.  Classification is byte-exact (``tobytes`` comparison), so a
  delta-solved epoch is *identical* to a full-shipped one — the parity
  property suite in ``tests/perf`` locks that down.

* **Columnar result encoding.**  Workers return solutions as a packed
  bitmap (placement) plus the nonzero load entries instead of a dense
  float matrix, and solver counters (``PERF_COUNTERS``) are written back
  onto the driver-side controller so statistics like ``warm_seeded`` are
  observable without shipping solver state.

Determinism contract (unchanged from v1, property-tested): results and
trace digests are bit-identical across parallelism levels.  The serial
path runs the same classification bookkeeping, so ``pool.dispatch`` /
``pool.merge`` trace events — which now carry delta/full payload sizes —
are byte-identical serial vs parallel.
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.placement.problem import PlacementProblem, PlacementSolution
from repro.placement.sparse import SparsePlacement, SparseSolution


class EngineProtocolError(RuntimeError):
    """Driver and worker disagree about resident pod state (an engine bug,
    never a user error — the parity suite exists to keep this unraisable)."""


@dataclass
class PlacementTask:
    """One pod's pure solve stage.

    Attributes
    ----------
    key:
        Caller identity (pod name).  Batches are merged in task order;
        the key additionally pins the pod to a worker process and indexes
        its resident state.
    problem:
        The placement instance to solve.
    controller:
        Any object with ``solve(problem) -> PlacementSolution``.  Must be
        picklable for ``parallelism > 1``; it ships to the pod's worker
        once and stays resident there.
    seed:
        When set and the controller has an ``rng`` attribute, the solving
        process replaces it with ``default_rng(seed)`` before solving —
        the hook that keeps randomized controllers identical across
        parallelism levels.
    trace_ctx:
        Opaque trace context (e.g. ``{"t": ..., "epoch": ...}``) used to
        stamp pool.dispatch/merge events.  It never crosses the process
        boundary — the driver keeps it and emits both events itself.
    """

    key: str
    problem: PlacementProblem
    controller: object
    seed: Optional[int] = None
    trace_ctx: Optional[dict] = None


def derive_seed(key: str, epoch) -> int:
    """Stable per-(pod, epoch) seed: identical across processes and runs
    (unlike ``hash()``, which is salted per interpreter)."""
    return zlib.crc32(f"{key}:{epoch}".encode()) & 0x7FFFFFFF


def solve_placement_task(task: PlacementTask) -> PlacementSolution:
    """Run one task's pure solve stage in the calling process.

    This is the whole solve semantics of the engine: re-seed the
    controller's RNG when the task carries a seed, then ``solve``.  The
    serial path calls it directly; workers run the same two steps against
    their resident controller.
    """
    controller = task.controller
    if task.seed is not None and hasattr(controller, "rng"):
        controller.rng = np.random.default_rng(task.seed)
    return controller.solve(task.problem)


# ------------------------------------------------------------------ codecs


def _struct_key(problem: PlacementProblem) -> tuple:
    """Byte-exact identity of a problem's *structural* fields — everything
    except the demand vector and the current placement."""
    mi = problem.max_instances
    return (
        problem.current.shape,
        problem.server_cpu.tobytes(),
        problem.server_mem.tobytes(),
        problem.app_mem.tobytes(),
        mi.tobytes() if mi is not None else b"",
    )


def _struct_nbytes(struct: tuple) -> int:
    return sum(len(b) for b in struct[1:])


def _fingerprint(struct: tuple, current_bytes: bytes) -> int:
    """CRC32 witness of (structure, placement) used to cross-check that
    driver and worker agree before a delta solve."""
    shape = struct[0]
    h = zlib.crc32(f"{shape[0]}x{shape[1]}".encode())
    for b in struct[1:]:
        h = zlib.crc32(b, h)
    return zlib.crc32(current_bytes, h)


def _crc(arr) -> int:
    """CRC32 over an array's exact bytes (dense ndarray or CSR placement)."""
    if isinstance(arr, SparsePlacement):
        return zlib.crc32(arr.tobytes())
    return zlib.crc32(np.ascontiguousarray(arr))


def _encode_solution(sol) -> tuple:
    """Columnar wire encoding: packed placement bits + sparse load.

    The load matrix is zero almost everywhere (a few instances per app),
    so shipping (indices, values) of its nonzeros beats the dense float64
    matrix by an order of magnitude.  Decoding reconstructs the dense
    arrays exactly — same bytes, not approximately.  CSR solutions (mega
    scale) are already in wire shape and ship tagged as-is."""
    if isinstance(sol, SparseSolution):
        p = sol.placement
        return (
            "csr",
            p.shape,
            p.indptr,
            p.indices,
            np.ascontiguousarray(sol.load),
            int(sol.changes),
            float(sol.wall_time_s),
        )
    placement = np.ascontiguousarray(sol.placement)
    flat = np.ascontiguousarray(sol.load).reshape(-1)
    idx = np.flatnonzero(flat).astype(np.int64)
    return (
        placement.shape,
        np.packbits(placement),
        idx,
        flat[idx],
        int(sol.changes),
        float(sol.wall_time_s),
    )


def _decode_solution(enc: tuple):
    if enc[0] == "csr":
        _tag, shape, indptr, indices, load, changes, wall = enc
        return SparseSolution(
            placement=SparsePlacement(shape, indptr, indices, check=False),
            load=load,
            changes=changes,
            wall_time_s=wall,
        )
    shape, packed, idx, vals, changes, wall = enc
    n = int(shape[0] * shape[1])
    placement = np.unpackbits(packed, count=n).astype(bool).reshape(shape)
    load = np.zeros(n)
    load[idx] = vals
    return PlacementSolution(
        placement=placement,
        load=load.reshape(shape),
        changes=changes,
        wall_time_s=wall,
    )


# ---------------------------------------------------------- worker process

#: Per-process registry of resident pod state, keyed by task key.  Lives
#: in each worker; the driver mirrors what every worker holds and ships
#: demand-only deltas against that mirror.
_RESIDENT: dict = {}


class _ResidentPod:
    """One pod's state kept alive inside its worker between epochs."""

    __slots__ = (
        "controller",
        "server_cpu",
        "server_mem",
        "app_mem",
        "max_instances",
        "current",
    )

    def __init__(self, controller):
        self.controller = controller
        self.server_cpu = None
        self.server_mem = None
        self.app_mem = None
        self.max_instances = None
        self.current = None

    def install_problem(self, problem: PlacementProblem) -> None:
        self.server_cpu = problem.server_cpu
        self.server_mem = problem.server_mem
        self.app_mem = problem.app_mem
        self.max_instances = problem.max_instances
        self.current = problem.current

    def rebuild_problem(self, demand: np.ndarray) -> PlacementProblem:
        """A delta epoch's full problem: resident structure + resident
        predicted placement (= last solution) + the shipped demand."""
        return PlacementProblem(
            server_cpu=self.server_cpu,
            server_mem=self.server_mem,
            app_cpu_demand=demand,
            app_mem=self.app_mem,
            current=self.current,
            max_instances=self.max_instances,
        )

    def fingerprint(self) -> int:
        mi = self.max_instances
        struct = (
            self.current.shape,
            self.server_cpu.tobytes(),
            self.server_mem.tobytes(),
            self.app_mem.tobytes(),
            mi.tobytes() if mi is not None else b"",
        )
        return _fingerprint(struct, self.current.tobytes())


def _controller_counters(controller) -> Optional[dict]:
    names = getattr(type(controller), "PERF_COUNTERS", ())
    if not names:
        return None
    return {name: getattr(controller, name) for name in names}


def _worker_solve(key: str, mode: str, payload: tuple, seed: Optional[int]):
    """Worker entry point (module-level so it is picklable).

    ``mode`` is ``"full"`` (payload = problem + optionally the controller
    to install) or ``"delta"`` (payload = demand vector + the driver's
    fingerprint of what it believes this worker holds).
    """
    pod = _RESIDENT.get(key)
    if mode == "full":
        problem, controller = payload
        if controller is not None:
            pod = _ResidentPod(controller)
            _RESIDENT[key] = pod
        elif pod is None:  # pragma: no cover - protocol bug guard
            raise EngineProtocolError(f"full task without controller for {key!r}")
        pod.install_problem(problem)
    else:
        demand, expected_fp = payload
        if pod is None:  # pragma: no cover - protocol bug guard
            raise EngineProtocolError(f"delta task for non-resident pod {key!r}")
        if pod.fingerprint() != expected_fp:  # pragma: no cover - guard
            raise EngineProtocolError(f"resident state diverged for {key!r}")
        problem = pod.rebuild_problem(demand)
    solution = solve_placement_task(
        PlacementTask(key=key, problem=problem, controller=pod.controller, seed=seed)
    )
    pod.current = solution.placement
    return _encode_solution(solution), _controller_counters(pod.controller)


# ----------------------------------------------------------------- driver


@dataclass
class _Dispatch:
    """Driver-side classification of one task (computed in every mode so
    trace events stay byte-identical across parallelism levels)."""

    mode: str  # "full" | "delta"
    ship_controller: bool
    struct: tuple
    current_bytes: bytes
    fingerprint: int
    nbytes: int


@dataclass
class _ResidentRecord:
    """The driver's mirror of one pod's worker-resident state."""

    controller: object
    struct: tuple
    current_bytes: bytes


class PlacementEngine:
    """Fan independent placement solves across persistent worker processes.

    Parameters
    ----------
    parallelism:
        Worker count; defaults to ``os.cpu_count()``.  ``1`` solves
        in-process with the exact same code path (no pool is ever
        created), so it is the serial fallback the parallel path must
        match bit-for-bit.

    Notes
    -----
    Pods are pinned to workers (key -> worker shard), so *all* solves for
    a pod — batch epochs and single-task fault re-placements alike — hit
    the same resident controller, which is what keeps a parallel run's
    solver-state evolution in lockstep with a serial run's.  Closing the
    engine mid-run discards resident state; for controllers that keep
    warm-start state, reuse after ``close()`` restarts them cold.
    """

    def __init__(self, parallelism: Optional[int] = None):
        self.parallelism = (
            int(parallelism) if parallelism is not None else (os.cpu_count() or 1)
        )
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self._pools: Optional[list[Optional[ProcessPoolExecutor]]] = None
        self._assignment: dict[str, int] = {}
        self._resident: dict[str, _ResidentRecord] = {}
        #: Optional trace bus (set by the datacenter facade).  Dispatch
        #: and merge events never mention worker identity or pool width,
        #: so traces are identical across parallelism levels.
        self.trace = None
        #: Batches dispatched (one per epoch in the datacenter loop).
        self.batches = 0
        #: Individual pod solves executed.
        self.tasks_solved = 0
        #: Pool-set creations — stays at <= 1 per engine lifetime, which
        #: is the point: workers persist across epochs.
        self.pool_spawns = 0
        #: Tasks shipped as demand-only deltas vs full problems.
        self.delta_tasks = 0
        self.full_tasks = 0
        #: Full ships that *invalidated* live resident state (topology or
        #: placement changed under the same controller — fault paths).
        self.invalidations = 0
        #: Payload bytes (logical array bytes, not pickle framing).
        self.bytes_shipped_delta = 0
        self.bytes_shipped_full = 0

    @property
    def is_parallel(self) -> bool:
        return self.parallelism > 1

    # -- worker routing ----------------------------------------------------
    def _slot(self, key: str) -> int:
        slot = self._assignment.get(key)
        if slot is None:
            slot = len(self._assignment) % self.parallelism
            self._assignment[key] = slot
        return slot

    def _pool(self, slot: int) -> ProcessPoolExecutor:
        if self._pools is None:
            self._pools = [None] * self.parallelism
            self.pool_spawns += 1
        if self._pools[slot] is None:
            self._pools[slot] = ProcessPoolExecutor(max_workers=1)
        return self._pools[slot]

    # -- classification ----------------------------------------------------
    def _classify(self, task: PlacementTask) -> _Dispatch:
        problem = task.problem
        struct = _struct_key(problem)
        current_bytes = problem.current.tobytes()
        rec = self._resident.get(task.key)
        same_controller = rec is not None and rec.controller is task.controller
        if (
            same_controller
            and rec.struct == struct
            and rec.current_bytes == current_bytes
        ):
            self.delta_tasks += 1
            nbytes = int(problem.app_cpu_demand.nbytes)
            self.bytes_shipped_delta += nbytes
            return _Dispatch(
                "delta", False, struct, current_bytes,
                _fingerprint(struct, current_bytes), nbytes,
            )
        if same_controller:
            self.invalidations += 1
        self.full_tasks += 1
        nbytes = int(
            _struct_nbytes(struct)
            + problem.app_cpu_demand.nbytes
            + problem.current.nbytes
        )
        self.bytes_shipped_full += nbytes
        return _Dispatch("full", not same_controller, struct, current_bytes, 0, nbytes)

    # -- batch solve -------------------------------------------------------
    def solve_batch(
        self, tasks: Iterable[PlacementTask]
    ) -> list[PlacementSolution]:
        """Solve every task; results are returned in task order.

        The serial and parallel paths share :func:`solve_placement_task`
        *and* the delta-classification bookkeeping, so the only difference
        is where the solve runs and whether anything actually ships.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        self.batches += 1
        self.tasks_solved += len(tasks)
        dispatches = [self._classify(t) for t in tasks]
        tracing = self.trace is not None and self.trace.enabled
        ctx = tasks[0].trace_ctx
        if tracing and ctx is not None:
            self.trace.emit(
                "pool.dispatch", t=ctx.get("t", 0.0), epoch=ctx.get("epoch"),
                tasks=[t.key for t in tasks],
                delta=[t.key for t, d in zip(tasks, dispatches) if d.mode == "delta"],
                full=[t.key for t, d in zip(tasks, dispatches) if d.mode == "full"],
                bytes_delta=sum(d.nbytes for d in dispatches if d.mode == "delta"),
                bytes_full=sum(d.nbytes for d in dispatches if d.mode == "full"),
            )
        if self.parallelism == 1:
            results = [(solve_placement_task(t), None) for t in tasks]
        else:
            futures = []
            for task, disp in zip(tasks, dispatches):
                if disp.mode == "full":
                    payload = (
                        task.problem,
                        task.controller if disp.ship_controller else None,
                    )
                else:
                    payload = (task.problem.app_cpu_demand, disp.fingerprint)
                futures.append(
                    self._pool(self._slot(task.key)).submit(
                        _worker_solve, task.key, disp.mode, payload, task.seed
                    )
                )
            try:
                raw = [f.result() for f in futures]
            except BaseException:
                # A dead worker took its resident state with it; reset so
                # the engine stays usable (everything re-ships full).
                self.close()
                raise
            results = [
                (_decode_solution(enc), counters) for enc, counters in raw
            ]
        solutions: list[PlacementSolution] = []
        for task, disp, (solution, counters) in zip(tasks, dispatches, results):
            if counters:
                # Absolute counter write-back: the resident controller's
                # statistics become observable on the driver-side object.
                for name, value in counters.items():
                    setattr(task.controller, name, value)
            self._resident[task.key] = _ResidentRecord(
                controller=task.controller,
                struct=disp.struct,
                current_bytes=solution.placement.tobytes(),
            )
            if tracing and task.trace_ctx is not None:
                tctx = task.trace_ctx
                # CRCs of the solution arrays: cheap witnesses that the
                # parallel merge is bit-identical to the serial solve.
                self.trace.emit(
                    "pool.merge", t=tctx.get("t", 0.0), key=task.key,
                    epoch=tctx.get("epoch"),
                    shipped=disp.mode, payload_bytes=disp.nbytes,
                    placement_crc=_crc(solution.placement),
                    load_crc=_crc(solution.load),
                )
            solutions.append(solution)
        return solutions

    def close(self) -> None:
        """Shut the worker pools down and drop resident state (idempotent)."""
        if self._pools is not None:
            for pool in self._pools:
                if pool is not None:
                    pool.shutdown()
            self._pools = None
        self._assignment.clear()
        self._resident.clear()

    def __enter__(self) -> "PlacementEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
