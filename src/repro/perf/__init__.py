"""Performance engine: parallel pod-epoch placement and the bench harness.

The paper's scalability argument (Sections I, III) is that logical pods
make placement *embarrassingly parallel*: "each pod manager runs an
existing centralized placement algorithm within its pod" independently.
:class:`PlacementEngine` realizes that claim — the pure solve stage of
every pod's epoch (:class:`PlacementProblem` in, ``PlacementSolution``
out) is fanned across a persistent process pool, while the stateful apply
stage (VM boots/stops, RIP wiring) stays in the main process in
deterministic pod order, so results are bit-identical to the serial loop.

``repro bench`` (:mod:`repro.perf.bench`) pins the placement/max-min/epoch
workloads and writes ``BENCH_placement.json`` / ``BENCH_network.json`` so
every later change has a machine-readable trajectory to beat.
"""

from repro.perf.engine import (
    PlacementEngine,
    PlacementTask,
    derive_seed,
    solve_placement_task,
)
from repro.perf.rss import peak_rss_mb

__all__ = [
    "PlacementEngine",
    "PlacementTask",
    "derive_seed",
    "solve_placement_task",
    "peak_rss_mb",
]
