"""Process peak-RSS measurement shared by benches and the mega driver."""

from __future__ import annotations

import resource
import sys


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the value is
    a high-water mark, so within one process it only ever grows.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return float(peak) / divisor
