"""Process-wide metrics registry: counters, gauges, bounded histograms
and timer contexts, with a cheap no-op mode and JSON export.

Instruments are created lazily and cached by name, so call sites can do
``registry.counter("epochs").inc()`` without registration ceremony.  In
no-op mode every accessor returns a shared null instrument whose methods
do nothing, keeping disabled-instrumentation cost at a few attribute
lookups.
"""

from __future__ import annotations

import json
import math
import time
from typing import Iterator, Optional

from repro.sim.monitor import Tally


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. current pool size, VMs in flight)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value = (self.value or 0.0) + delta

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Bounded-memory distribution built on the simulator's Tally
    (Welford moments + Algorithm R reservoir)."""

    __slots__ = ("name", "_tally")

    def __init__(self, name: str, reservoir: int = 512):
        self.name = name
        self._tally = Tally(name, reservoir_size=reservoir)

    def observe(self, value: float) -> None:
        self._tally.observe(value)

    def snapshot(self) -> dict:
        t = self._tally
        out = {
            "type": "histogram",
            "count": t.count,
            "mean": t.mean if t.count else None,
            "min": t.minimum if t.count else None,
            "max": t.maximum if t.count else None,
        }
        for q in (50, 90, 99):
            p = t.percentile(q)
            out[f"p{q}"] = None if p is None or (
                isinstance(p, float) and math.isnan(p)
            ) else p
        return out


class Timer:
    """Wall-clock timer; ``with registry.timer("x").time(): ...`` records
    one histogram observation per context exit."""

    __slots__ = ("name", "histogram")

    def __init__(self, name: str):
        self.name = name
        self.histogram = Histogram(name)

    def time(self) -> "_TimerContext":
        return _TimerContext(self.histogram)

    def snapshot(self) -> dict:
        out = self.histogram.snapshot()
        out["type"] = "timer"
        return out


class _TimerContext:
    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._t0)


class _NullInstrument:
    """Answers every instrument method with a no-op; one shared instance
    backs all names when the registry is disabled."""

    name = "<noop>"

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullInstrument":
        return self

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "noop"}


_NULL = _NullInstrument()


class MetricsRegistry:
    """Name-keyed instrument store.

    ``MetricsRegistry(enabled=False)`` hands out the shared null
    instrument for every request — callers keep identical code paths in
    both modes.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, cls):
        if not self.enabled:
            return _NULL
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def __iter__(self) -> Iterator[tuple[str, object]]:
        return iter(sorted(self._instruments.items()))

    def snapshot(self) -> dict:
        return {name: inst.snapshot() for name, inst in self}

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        text = json.dumps(self.snapshot(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text
