"""Online cross-subsystem invariant auditing.

The :class:`InvariantAuditor` subscribes to a :class:`~repro.obs.trace.TraceBus`
and checks, while a run is in flight, the properties the paper's control
loops are supposed to preserve but no single subsystem can see on its own:

* ``journal-monotonic`` — VIP/RIP write-ahead journal epochs strictly
  increase (from ``journal.commit`` events).
* ``k3-conservation`` — a K3 server vacate never loses VMs: the pod's VM
  count after equals the count before minus the VMs deliberately stopped
  (from ``k3.vacate`` events).
* ``vip-single-home`` — a VIP is installed on at most one LB switch.
* ``vip-single-route`` — a VIP is advertised on at most one access link
  (the K1 property).
* ``rip-single-home`` — a RIP appears in at most one (switch, VIP) entry.
* ``rip-pod`` — every registered RIP resolves to exactly one pod through
  its VM's host server.
* ``pod-caps`` — pod server/VM counts stay within the configured caps.
* ``server-caps`` — per-server CPU/memory stay within capacity.
* ``switch-caps`` — per-switch VIP/RIP table sizes stay within limits.

The structural sweeps run at every ``epoch.end`` (quiescent points — K2
transfers have a legitimate transient where a VIP is advertised nowhere
mid-cutover, which is why the ≤1 checks are scheduled at epoch
boundaries rather than on every event).  Violations are recorded as
structured :class:`Violation` records; ``strict=True`` raises
:class:`InvariantViolation` at the first one instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import TraceBus, TraceEvent

_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach."""

    t: float
    invariant: str
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[t={self.t:.1f}] {self.invariant}: {self.detail}"


class InvariantViolation(AssertionError):
    """Raised in strict mode; carries the structured violation."""

    def __init__(self, violation: Violation):
        super().__init__(str(violation))
        self.violation = violation


class InvariantAuditor:
    """Checks cross-subsystem invariants online from trace events.

    Parameters
    ----------
    dc:
        The :class:`MegaDataCenter` under audit; needed for the
        structural sweeps (state registries, switch tables, BGP RIB).
        Event-only checks (journal monotonicity, K3 conservation) work
        without it.
    strict:
        Raise :class:`InvariantViolation` at the first breach instead of
        accumulating.
    """

    def __init__(self, dc=None, strict: bool = False, columnar=None):
        self.dc = dc
        #: Optional :class:`~repro.core.mega.MegaScaleDriver` under audit;
        #: epoch-end sweeps then check the columnar structural invariants
        #: (CSR well-formedness, memory headroom, alive-cover accounting,
        #: RIP-mirror row validity) with or without an object-model dc.
        self.columnar = columnar
        self.strict = strict
        self.violations: list[Violation] = []
        self.events_seen = 0
        self.audits_run = 0
        #: Highest epoch seen per journal (keyed by the ``shard`` field of
        #: ``journal.commit``; the single-journal manager emits no shard
        #: field and lands under ``""``).  Epochs are monotonic *per
        #: journal* — shards mint epochs independently.
        self._last_journal_epoch: dict[str, int] = {}
        self._bus: Optional["TraceBus"] = None

    # -- lifecycle ----------------------------------------------------------
    def attach(self, bus: "TraceBus") -> "InvariantAuditor":
        bus.subscribe(self.on_event)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self.on_event)
            self._bus = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def _flag(self, t: float, invariant: str, **detail) -> None:
        v = Violation(t=float(t), invariant=invariant, detail=detail)
        self.violations.append(v)
        if self.strict:
            raise InvariantViolation(v)

    # -- event hooks --------------------------------------------------------
    def on_event(self, ev: "TraceEvent") -> None:
        self.events_seen += 1
        if ev.kind == "journal.commit":
            self._check_journal(ev)
        elif ev.kind == "k3.vacate":
            self._check_k3_conservation(ev)
        elif ev.kind == "dataplane.steer":
            self._check_steer_balance(ev)
        elif ev.kind == "epoch.end":
            self.audit_now(ev.t)

    def _check_journal(self, ev: "TraceEvent") -> None:
        epoch = ev.data.get("epoch")
        if epoch is None:
            return
        journal = ev.data.get("shard", "")
        previous = self._last_journal_epoch.get(journal)
        if previous is not None and epoch <= previous:
            self._flag(
                ev.t, "journal-monotonic",
                epoch=epoch, previous=previous,
                **({"shard": journal} if journal else {}),
            )
        self._last_journal_epoch[journal] = epoch

    def _check_k3_conservation(self, ev: "TraceEvent") -> None:
        d = ev.data
        before, after, stopped = (
            d.get("vms_before"), d.get("vms_after"), d.get("stopped"),
        )
        if before is None or after is None or stopped is None:
            return
        if after != before - stopped:
            self._flag(
                ev.t, "k3-conservation",
                pod=d.get("pod"), vms_before=before,
                vms_after=after, stopped=stopped,
            )

    def _check_steer_balance(self, ev: "TraceEvent") -> None:
        """Every steered request is accounted for exactly once: it either
        opened a session, was rejected at capacity, or found no serving
        RIP — and every request got a DNS answer (hit or miss)."""
        d = ev.data
        requests = d.get("requests")
        if requests is None:
            return
        served = d.get("opened", 0) + d.get("rejected", 0) + d.get("unserved", 0)
        if served != requests:
            self._flag(
                ev.t, "dataplane-balance", requests=requests,
                opened=d.get("opened"), rejected=d.get("rejected"),
                unserved=d.get("unserved"),
            )
        answered = d.get("dns_hits", 0) + d.get("dns_misses", 0)
        if answered != requests:
            self._flag(
                ev.t, "dataplane-dns-balance", requests=requests,
                dns_hits=d.get("dns_hits"), dns_misses=d.get("dns_misses"),
            )

    # -- structural sweep ---------------------------------------------------
    def audit_now(self, t: float) -> list[Violation]:
        """Run the full structural sweep against the live datacenter
        and/or the columnar mega driver.  Returns violations found by
        *this* sweep."""
        if self.dc is None and self.columnar is None:
            return []
        self.audits_run += 1
        found_from = len(self.violations)
        if self.dc is not None:
            self._audit_tables(t)
            self._audit_routes(t)
            self._audit_rip_pods(t)
            self._audit_caps(t)
        if self.columnar is not None:
            self._audit_columnar(t)
        return self.violations[found_from:]

    def _audit_columnar(self, t: float) -> None:
        """Structural invariants of the columnar mega loop.

        * ``mega-csr`` — every pod's CSR placement is well-formed and its
          load vector matches the entry count;
        * ``mega-mem`` — no server's memory is overcommitted;
        * ``mega-cover`` — the per-app alive-cover accounting matches the
          pod liveness mask (the K3 spill denominators);
        * ``mega-rip-row`` — every active RIP-mirror row resolves to
          known app/vip/switch ids.
        """
        import numpy as np

        driver = self.columnar
        for pod in driver.pods:
            p = pod.placement
            n_servers = pod.servers.cpu.shape[0]
            if (
                p.indptr.shape[0] != n_servers + 1
                or pod.load.shape[0] != p.nnz
                or (np.diff(p.indptr) < 0).any()
            ):
                self._flag(
                    t, "mega-csr", pod=pod.pod,
                    servers=n_servers, nnz=int(p.nnz),
                    load_len=int(pod.load.shape[0]),
                )
            if (pod.mem_headroom() < -_EPS).any():
                self._flag(t, "mega-mem", pod=pod.pod)
        cover = getattr(driver, "_app_alive_cover", None)
        if cover is not None:
            expected = np.zeros_like(cover)
            for p in range(driver.config.n_pods):
                if driver.pod_alive[p]:
                    expected[driver._pod_app_gids(p)] += 1
            if not np.array_equal(cover, expected):
                bad = int((cover != expected).sum())
                self._flag(t, "mega-cover", apps_wrong=bad)
        bridge = getattr(driver, "bridge", None)
        if bridge is not None:
            reg = bridge.registry
            n = reg.n_rips
            active = reg.rip_active[:n]
            if (
                (reg.rip_app[:n][active] < 0).any()
                or (reg.rip_vip[:n][active] < 0).any()
                or (reg.rip_switch[:n][active] < 0).any()
            ):
                self._flag(t, "mega-rip-row", active=int(active.sum()))
        dataplane = getattr(driver, "dataplane", None)
        if dataplane is not None:
            self._audit_conntrack(t, dataplane.conn)

    def _audit_conntrack(self, t: float, conn) -> None:
        """``dataplane-conntrack``: the columnar conn table's per-switch
        and per-VIP counters must agree with its row-level alive mask,
        and no switch may exceed its session capacity."""
        import numpy as np

        live = conn.alive[: conn._size]
        by_switch = np.bincount(
            conn.conn_switch[: conn._size][live],
            minlength=conn.switch_cap.shape[0],
        )
        by_vip = np.bincount(
            conn.conn_vip[: conn._size][live],
            minlength=conn.vip_count.shape[0],
        )
        if not np.array_equal(by_switch, conn.switch_count):
            self._flag(
                t, "dataplane-conntrack", counter="switch_count",
                rows=int(live.sum()), counted=int(conn.switch_count.sum()),
            )
        if not np.array_equal(by_vip, conn.vip_count):
            self._flag(
                t, "dataplane-conntrack", counter="vip_count",
                rows=int(live.sum()), counted=int(conn.vip_count.sum()),
            )
        over = conn.switch_count > conn.switch_cap
        if over.any():
            self._flag(
                t, "dataplane-conntrack", counter="capacity",
                switches_over=int(over.sum()),
            )

    def _audit_tables(self, t: float) -> None:
        """VIPs on ≤1 switch; each RIP in ≤1 (switch, VIP) entry.

        A sharded control plane may deliberately duplicate a VIP during
        an optimistic adoption (the old owner was unreachable); those
        VIPs — reported by ``vips_in_conflict()`` — are a legitimate
        transient the anti-entropy rounds resolve, so they (and the RIPs
        under them) are excluded until then."""
        conflict_fn = getattr(getattr(self.dc, "viprip", None), "vips_in_conflict", None)
        in_conflict: set[str] = conflict_fn() if conflict_fn is not None else set()
        vip_homes: dict[str, list[str]] = {}
        rip_homes: dict[str, list[tuple[str, str]]] = {}
        for switch in self.dc.switches.values():
            for vip in switch.vips():
                if vip in in_conflict:
                    continue
                vip_homes.setdefault(vip, []).append(switch.name)
                for rip in switch.entry(vip).rips:
                    rip_homes.setdefault(rip, []).append((switch.name, vip))
        for vip, homes in vip_homes.items():
            if len(homes) > 1:
                self._flag(t, "vip-single-home", vip=vip, switches=sorted(homes))
        for rip, homes in rip_homes.items():
            if len(homes) > 1:
                self._flag(
                    t, "rip-single-home", rip=rip,
                    entries=sorted(f"{s}/{v}" for s, v in homes),
                )

    def _audit_routes(self, t: float) -> None:
        """K1: each VIP advertised on ≤1 access link (padded routes are
        intentional dilution, not real next-hops — excluded)."""
        bgp = getattr(self.dc, "bgp", None)
        if bgp is None:
            return
        for vip in bgp.all_vips():
            links = bgp.links_for(vip, include_padded=False)
            if len(links) > 1:
                self._flag(t, "vip-single-route", vip=vip, links=sorted(links))

    def _audit_rip_pods(self, t: float) -> None:
        """Every registered RIP resolves to exactly one pod via its VM's
        host server."""
        state = self.dc.state
        for rip in state.rips:
            pod = state.pod_of_rip(rip)
            if pod is None:
                self._flag(t, "rip-pod", rip=rip)

    def _audit_caps(self, t: float) -> None:
        for manager in self.dc.pod_managers.values():
            pod = manager.pod
            if pod.n_servers > pod.max_servers:
                self._flag(
                    t, "pod-caps", pod=pod.name,
                    servers=pod.n_servers, max_servers=pod.max_servers,
                )
            if pod.n_vms > pod.max_vms:
                self._flag(
                    t, "pod-caps", pod=pod.name,
                    vms=pod.n_vms, max_vms=pod.max_vms,
                )
            for server in pod.servers:
                if server.cpu_allocated > server.spec.cpu_capacity + _EPS:
                    self._flag(
                        t, "server-caps", server=server.name, resource="cpu",
                        used=round(server.cpu_allocated, 6),
                        capacity=server.spec.cpu_capacity,
                    )
                if server.mem_allocated > server.spec.mem_gb + _EPS:
                    self._flag(
                        t, "server-caps", server=server.name, resource="mem",
                        used=round(server.mem_allocated, 6),
                        capacity=server.spec.mem_gb,
                    )
        for switch in self.dc.switches.values():
            if switch.num_vips > switch.limits.max_vips:
                self._flag(
                    t, "switch-caps", switch=switch.name, resource="vips",
                    used=switch.num_vips, limit=switch.limits.max_vips,
                )
            if switch.num_rips > switch.limits.max_rips:
                self._flag(
                    t, "switch-caps", switch=switch.name, resource="rips",
                    used=switch.num_rips, limit=switch.limits.max_rips,
                )

    def report(self) -> dict:
        return {
            "ok": self.ok,
            "events_seen": self.events_seen,
            "audits_run": self.audits_run,
            "violations": [
                {"t": v.t, "invariant": v.invariant, "detail": v.detail}
                for v in self.violations
            ],
        }
