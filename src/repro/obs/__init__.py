"""Observability spine: metrics registry, structured trace bus, and the
cross-subsystem invariant auditor.

Typical use::

    from repro.obs import Observability

    obs = Observability(trace_path="run.jsonl")
    dc = MegaDataCenter(apps, obs=obs, audit=True)
    dc.run(3600.0)
    print(obs.trace.digest)          # deterministic per seeded run
    print(obs.metrics.to_json())
    assert dc.auditor.ok

``Observability.disabled()`` gives a facade whose bus and registry are
no-ops, so instrumented code needs no branches at call sites.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.audit import InvariantAuditor, InvariantViolation, Violation
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.trace import (
    RESERVED_KEYS,
    TraceBus,
    TraceEvent,
    diff_traces,
    digest_of,
    read_trace,
    summarize_trace,
)

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "TraceBus",
    "TraceEvent",
    "RESERVED_KEYS",
    "read_trace",
    "digest_of",
    "summarize_trace",
    "diff_traces",
    "InvariantAuditor",
    "InvariantViolation",
    "Violation",
]


class Observability:
    """Bundles one :class:`MetricsRegistry` and one :class:`TraceBus`
    for a run; the unit the datacenter facade is wired with."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceBus] = None,
        trace_path: Optional[str] = None,
    ):
        if trace is not None and trace_path is not None:
            raise ValueError("pass either trace or trace_path, not both")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = (
            trace if trace is not None else TraceBus(path=trace_path)
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """A facade whose every instrument and emit is a no-op."""
        return cls(
            metrics=MetricsRegistry(enabled=False),
            trace=TraceBus(enabled=False),
        )

    @property
    def enabled(self) -> bool:
        return self.trace.enabled or self.metrics.enabled

    def close(self) -> None:
        self.trace.close()
