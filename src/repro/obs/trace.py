"""Structured trace bus: typed, timestamped events with a deterministic
content digest.

Every traced subsystem emits :class:`TraceEvent`\\ s (epoch boundaries,
knob invocations, journal commits, fault injections, pool dispatch/merge)
onto one :class:`TraceBus`.  Events are serialized as *canonical JSON*
(sorted keys, fixed separators) and folded into a streaming SHA-256, so a
seeded run has a single content digest: two runs of the same scenario —
serial or parallel engine, any machine — must produce byte-identical
traces, and the digest is the cheap way to assert it.

Determinism contract for emitters: event payloads may carry **simulated**
time, counters and names only — never wall-clock times, worker identities
or pool widths, which differ across engine parallelism levels.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

#: Keys of the event envelope; payload fields must not shadow them.
RESERVED_KEYS = frozenset({"seq", "t", "kind"})


def _jsonable(value: Any) -> Any:
    """Coerce a payload value to plain JSON types, deterministically."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    return str(value)


def canonical_line(payload: dict) -> str:
    """The canonical JSON encoding the digest is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TraceEvent:
    """One typed, timestamped trace record.

    ``t`` is *simulated* time.  ``seq`` is the bus-wide emission index —
    total order even when many events share one simulation instant.
    """

    seq: int
    t: float
    kind: str
    data: dict

    def payload(self) -> dict:
        return {"seq": self.seq, "t": self.t, "kind": self.kind, **self.data}

    def line(self) -> str:
        try:
            return canonical_line(self.payload())
        except (TypeError, ValueError):
            # Non-JSON payload values (numpy scalars, sets, objects) get
            # the same deterministic coercion the bus digest applies.
            sanitized = {
                "seq": self.seq,
                "t": self.t,
                "kind": self.kind,
                **_jsonable(self.data),
            }
            return canonical_line(sanitized)


class TraceBus:
    """Collects trace events, maintains the streaming digest, and fans
    events out to subscribers (e.g. the invariant auditor).

    Parameters
    ----------
    path:
        Optional JSONL sink; each event is appended as one canonical line.
    enabled:
        ``False`` makes :meth:`emit` a cheap no-op returning ``None`` —
        emitters should additionally guard hot paths with
        ``if bus.enabled:`` so payload dicts are never even built.
    keep_events:
        Retain events in :attr:`events` (on by default; turn off for very
        long runs that only need the digest and the JSONL file).

    Canonical encoding and digest folding are *buffered*: :meth:`emit`
    appends a record and returns; serialization happens in batches of
    ``_DRAIN_EVERY`` or whenever :attr:`digest`, :meth:`flush` or
    :meth:`close` is called.  Payload values therefore must not be
    mutated after ``emit`` (every in-tree emitter passes scalars or
    freshly built containers).
    """

    _DRAIN_EVERY = 8192

    def __init__(
        self,
        path: Optional[str] = None,
        enabled: bool = True,
        keep_events: bool = True,
    ):
        self.enabled = enabled
        self.keep_events = keep_events
        self.events: list[TraceEvent] = []
        self._seq = 0
        self._sha = hashlib.sha256()
        self._pending: list[tuple[int, float, str, dict]] = []
        self._subscribers: list[Callable[[TraceEvent], None]] = []
        self.path = str(path) if path is not None else None
        self._fh = open(self.path, "w") if (self.path and enabled) else None

    # -- pub/sub ------------------------------------------------------------
    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    def emit(self, kind: str, t: float, **data: Any) -> Optional[TraceEvent]:
        if not self.enabled:
            return None
        if RESERVED_KEYS & data.keys():
            raise ValueError(
                f"trace payload may not use reserved keys {sorted(RESERVED_KEYS)}"
            )
        seq = self._seq
        self._seq += 1
        self._pending.append((seq, float(t), str(kind), data))
        if len(self._pending) >= self._DRAIN_EVERY:
            self._drain()
        # The event object is only materialized for consumers; a bus that
        # just digests (keep_events=False, no auditor) skips it entirely.
        ev = None
        if self.keep_events or self._subscribers:
            ev = TraceEvent(seq=seq, t=float(t), kind=str(kind), data=data)
            if self.keep_events:
                self.events.append(ev)
            for fn in self._subscribers:
                fn(ev)
        return ev

    def _drain(self) -> None:
        """Serialize buffered records into the digest (and file sink).

        Fast path first: most payloads are plain JSON types and
        json.dumps (C-speed) is far cheaper than the _jsonable
        recursion — sanitize only when dumps rejects a value (numpy
        scalars, sets, arbitrary objects).
        """
        if not self._pending:
            return
        dumps = json.dumps
        parts = []
        for seq, t, kind, data in self._pending:
            payload = {"seq": seq, "t": t, "kind": kind}
            payload.update(data)
            try:
                line = dumps(payload, sort_keys=True, separators=(",", ":"))
            except (TypeError, ValueError):
                payload = {"seq": seq, "t": t, "kind": kind}
                payload.update(_jsonable(data))
                line = dumps(payload, sort_keys=True, separators=(",", ":"))
            parts.append(line)
        self._pending.clear()
        blob = "\n".join(parts) + "\n"
        self._sha.update(blob.encode())
        if self._fh is not None:
            self._fh.write(blob)

    # -- results ------------------------------------------------------------
    @property
    def digest(self) -> str:
        """SHA-256 over the canonical JSONL emitted so far."""
        self._drain()
        return self._sha.hexdigest()

    @property
    def count(self) -> int:
        return self._seq

    def kind_counts(self) -> dict[str, int]:
        return dict(Counter(ev.kind for ev in self.events))

    def flush(self) -> None:
        self._drain()
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        self._drain()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceBus":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------- file tools


def read_trace(path: str) -> list[TraceEvent]:
    """Parse a JSONL trace file back into events."""
    events: list[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            data = {
                k: v for k, v in raw.items() if k not in RESERVED_KEYS
            }
            events.append(
                TraceEvent(
                    seq=int(raw["seq"]), t=float(raw["t"]),
                    kind=str(raw["kind"]), data=data,
                )
            )
    return events


def digest_of(events) -> str:
    """Digest of an event sequence (re-canonicalized, so it tolerates
    whitespace-normalized files and equals the emitting bus's digest)."""
    sha = hashlib.sha256()
    for ev in events:
        sha.update(ev.line().encode())
        sha.update(b"\n")
    return sha.hexdigest()


def summarize_trace(path: str) -> dict:
    """Per-kind counts, time span and digest of one trace file."""
    events = read_trace(path)
    return {
        "path": path,
        "events": len(events),
        "digest": digest_of(events),
        "t_first": events[0].t if events else None,
        "t_last": events[-1].t if events else None,
        "kinds": dict(Counter(ev.kind for ev in events)),
    }


def diff_traces(path_a: str, path_b: str) -> dict:
    """Structural diff of two trace files.

    Reports whether the digests match, the first diverging event (by
    position), and the per-kind count delta (b minus a).
    """
    a, b = read_trace(path_a), read_trace(path_b)
    first = None
    for i in range(max(len(a), len(b))):
        line_a = a[i].line() if i < len(a) else None
        line_b = b[i].line() if i < len(b) else None
        if line_a != line_b:
            first = {"index": i, "a": line_a, "b": line_b}
            break
    counts_a = Counter(ev.kind for ev in a)
    counts_b = Counter(ev.kind for ev in b)
    delta = {
        k: counts_b.get(k, 0) - counts_a.get(k, 0)
        for k in sorted(set(counts_a) | set(counts_b))
        if counts_b.get(k, 0) != counts_a.get(k, 0)
    }
    return {
        "identical": first is None,
        "a": {"path": path_a, "events": len(a), "digest": digest_of(a)},
        "b": {"path": path_b, "events": len(b), "digest": digest_of(b)},
        "first_divergence": first,
        "kind_delta": delta,
    }
