"""Application specifications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.workload.demand import DemandProcess


@dataclass
class AppSpec:
    """Everything the platform needs to know about one hosted application.

    Attributes
    ----------
    app_id:
        Unique name (``"app-0003"``).
    popularity:
        Normalized popularity weight (drives VIP allocation).
    demand:
        Traffic demand process in Gbps.
    vm_cpu:
        Nominal CPU slice of one instance VM.
    vm_mem_gb / vm_image_gb:
        Memory reservation and image size of one instance.
    gbps_per_cpu:
        Traffic one normalized CPU unit can serve — converts traffic demand
        into CPU demand (``cpu_demand = traffic / gbps_per_cpu``).
    min_instances:
        Floor on active instances (availability requirement).
    n_vips:
        VIPs allocated to this app (popularity-aware; Section IV-A).
    affinity_group:
        Optional co-placement group: tiers of one multi-tier website share
        a group and exchange backend traffic (Section II); the platform
        prefers placing groupmates in the same pods.
    """

    app_id: str
    popularity: float
    demand: DemandProcess
    vm_cpu: float = 0.25
    vm_mem_gb: float = 4.0
    vm_image_gb: float = 4.0
    gbps_per_cpu: float = 1.0
    min_instances: int = 1
    n_vips: int = 3
    affinity_group: Optional[str] = None

    def __post_init__(self):
        if self.vm_cpu <= 0 or self.gbps_per_cpu <= 0:
            raise ValueError(f"{self.app_id}: vm_cpu and gbps_per_cpu must be positive")
        if self.min_instances < 1:
            raise ValueError(f"{self.app_id}: min_instances must be >= 1")
        if self.n_vips < 1:
            raise ValueError(f"{self.app_id}: n_vips must be >= 1")

    def traffic_gbps(self, t: float) -> float:
        return self.demand.rate(t)

    def cpu_demand(self, t: float) -> float:
        """Total CPU units needed to serve the demand at time *t*."""
        return self.traffic_gbps(t) / self.gbps_per_cpu

    def instances_needed(self, t: float, headroom: float = 1.2) -> int:
        """Instances required at nominal slice size with *headroom*."""
        need = self.cpu_demand(t) * headroom / self.vm_cpu
        return max(self.min_instances, int(need) + (need % 1 > 0))
