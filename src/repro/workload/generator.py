"""Deterministic construction of whole workloads from a few parameters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.rng import RngHub
from repro.workload.apps import AppSpec
from repro.workload.demand import (
    ConstantDemand,
    DemandProcess,
    DiurnalDemand,
    FlashCrowdDemand,
)
from repro.workload.popularity import allocate_vip_counts, zipf_weights


@dataclass
class WorkloadBuilder:
    """Build a fleet of :class:`AppSpec` with Zipf popularity.

    Parameters
    ----------
    n_apps:
        Number of applications.
    total_gbps:
        Aggregate mean traffic demand across all applications.
    zipf_s:
        Popularity skew.
    mean_vips:
        Average VIPs per application (the paper's default is 3).
    diurnal_fraction:
        Fraction of apps whose demand is diurnal (rest constant); peak
        times are spread uniformly over the day.
    rng_hub:
        Seed source; every property of app *i* derives deterministically
        from it.
    """

    n_apps: int = 100
    total_gbps: float = 100.0
    zipf_s: float = 0.8
    mean_vips: float = 3.0
    diurnal_fraction: float = 0.5
    vm_cpu: float = 0.25
    gbps_per_cpu: float = 1.0
    rng_hub: RngHub = field(default_factory=lambda: RngHub(0))

    def build(self) -> list[AppSpec]:
        if self.n_apps < 1:
            raise ValueError("need at least one app")
        pop = zipf_weights(self.n_apps, self.zipf_s)
        vips = allocate_vip_counts(pop, mean_vips=self.mean_vips)
        rng = self.rng_hub.stream("workload")
        apps = []
        for i in range(self.n_apps):
            mean_demand = self.total_gbps * pop[i]
            if rng.random() < self.diurnal_fraction:
                demand: DemandProcess = DiurnalDemand(
                    mean=mean_demand,
                    amplitude=float(rng.uniform(0.2, 0.6)),
                    peak_time_s=float(rng.uniform(0, 86400)),
                )
            else:
                demand = ConstantDemand(mean_demand)
            apps.append(
                AppSpec(
                    app_id=f"app-{i:05d}",
                    popularity=float(pop[i]),
                    demand=demand,
                    vm_cpu=self.vm_cpu,
                    gbps_per_cpu=self.gbps_per_cpu,
                    n_vips=int(vips[i]),
                )
            )
        return apps

    def with_flash_crowd(
        self,
        apps: list[AppSpec],
        victims: list[int],
        spike_factor: float = 8.0,
        start_s: float = 600.0,
        ramp_s: float = 120.0,
        hold_s: float = 600.0,
    ) -> list[AppSpec]:
        """Replace the demand of *victims* (indices) with a flash crowd of
        the same baseline level."""
        out = list(apps)
        for i in victims:
            base = out[i].demand.rate(0.0)
            out[i] = AppSpec(
                app_id=out[i].app_id,
                popularity=out[i].popularity,
                demand=FlashCrowdDemand(
                    base=base,
                    spike_factor=spike_factor,
                    start_s=start_s,
                    ramp_s=ramp_s,
                    hold_s=hold_s,
                ),
                vm_cpu=out[i].vm_cpu,
                vm_mem_gb=out[i].vm_mem_gb,
                vm_image_gb=out[i].vm_image_gb,
                gbps_per_cpu=out[i].gbps_per_cpu,
                min_instances=out[i].min_instances,
                n_vips=out[i].n_vips,
            )
        return out
