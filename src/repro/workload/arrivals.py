"""Session arrival processes for session-level simulation.

Fluid experiments use :mod:`repro.workload.demand`; the session-level
examples and the connection-draining experiment (E5) additionally need
discrete client sessions: Poisson arrivals, a bursty 2-state MMPP, and
heavy-ish-tailed session durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass
class PoissonArrivals:
    """Homogeneous Poisson process with rate *rate_per_s*."""

    rate_per_s: float
    rng: np.random.Generator

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate must be positive")

    def interarrivals(self) -> Iterator[float]:
        while True:
            yield float(self.rng.exponential(1.0 / self.rate_per_s))


@dataclass
class MMPPArrivals:
    """2-state Markov-modulated Poisson process (bursty arrivals).

    Alternates between a *calm* state (rate ``rate_calm``) and a *burst*
    state (rate ``rate_burst``); state holding times are exponential.
    """

    rate_calm: float
    rate_burst: float
    mean_calm_s: float
    mean_burst_s: float
    rng: np.random.Generator

    def __post_init__(self):
        if min(self.rate_calm, self.rate_burst) <= 0:
            raise ValueError("rates must be positive")
        if min(self.mean_calm_s, self.mean_burst_s) <= 0:
            raise ValueError("state holding times must be positive")

    def interarrivals(self) -> Iterator[float]:
        burst = False
        state_left = float(self.rng.exponential(self.mean_calm_s))
        while True:
            rate = self.rate_burst if burst else self.rate_calm
            gap = float(self.rng.exponential(1.0 / rate))
            # consume state time; switch states as needed
            while gap > state_left:
                gap -= state_left
                burst = not burst
                mean = self.mean_burst_s if burst else self.mean_calm_s
                state_left = float(self.rng.exponential(mean))
                rate = self.rate_burst if burst else self.rate_calm
                # re-draw the residual gap at the new rate
                gap = float(self.rng.exponential(1.0 / rate))
            state_left -= gap
            yield gap

    @property
    def mean_rate(self) -> float:
        wc, wb = self.mean_calm_s, self.mean_burst_s
        return (self.rate_calm * wc + self.rate_burst * wb) / (wc + wb)


def lognormal_durations(
    rng: np.random.Generator, mean_s: float = 60.0, sigma: float = 1.0, size: int = 1
) -> np.ndarray:
    """Session durations, lognormal with the given *mean* (not median)."""
    if mean_s <= 0:
        raise ValueError("mean duration must be positive")
    mu = np.log(mean_s) - sigma**2 / 2
    return rng.lognormal(mu, sigma, size=size)
