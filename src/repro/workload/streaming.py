"""Streaming demand generation for mega-scale epochs.

The object-based :class:`~repro.workload.generator.WorkloadBuilder` builds
one ``AppSpec`` (plus a demand-process object) per application — fine at
thousands of apps, hopeless at the paper's 300k.  This module keeps the
same demand model (Zipf popularity, a diurnal fraction with per-app
amplitude/phase, constant the rest) as flat NumPy parameter arrays and
evaluates demand *by index range*, so an epoch driver can consume demand
in bounded-size chunks without ever materializing the full app x epoch
matrix.

Chunking contract: every demand formula here is purely elementwise in the
app index, so ``demand_gbps(t, lo, hi)`` is bit-identical to
``demand_gbps(t)[lo:hi]`` for any split — :meth:`fingerprint` hashes the
chunk stream so tests (and the mega driver) can assert chunked ≡
materialized cheaply.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.workload.popularity import zipf_weights


@dataclass
class StreamingWorkload:
    """Vectorised demand model over ``n_apps`` applications.

    Per-app demand at time ``t`` (seconds):

    * diurnal apps: ``mean * (1 + amplitude * cos(2*pi*(t - peak)/period))``
      — the same curve as :class:`~repro.workload.demand.DiurnalDemand`;
    * the rest: constant ``mean``.

    ``mean`` is Zipf-popularity-weighted so a few apps are hot and the tail
    is long, matching the paper's "roughly correspond to websites".
    """

    n_apps: int
    total_gbps: float
    zipf_s: float = 0.8
    diurnal_fraction: float = 0.5
    period_s: float = 86400.0
    gbps_per_cpu: float = 1.0
    seed: int = 0
    mean_gbps: np.ndarray = field(init=False, repr=False)
    amplitude: np.ndarray = field(init=False, repr=False)
    peak_time_s: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        if self.n_apps < 1:
            raise ValueError("need at least one application")
        if self.total_gbps <= 0:
            raise ValueError("total demand must be positive")
        if not 0.0 <= self.diurnal_fraction <= 1.0:
            raise ValueError("diurnal_fraction must be in [0, 1]")
        rng = np.random.default_rng(self.seed)
        self.mean_gbps = zipf_weights(self.n_apps, self.zipf_s) * self.total_gbps
        diurnal = rng.random(self.n_apps) < self.diurnal_fraction
        # amplitude 0 for constant apps makes the formula uniform (and
        # branch-free) across the whole index range.
        self.amplitude = np.where(
            diurnal, rng.uniform(0.2, 0.6, self.n_apps), 0.0
        )
        self.peak_time_s = rng.uniform(0.0, self.period_s, self.n_apps)

    # -- demand evaluation --------------------------------------------
    def demand_gbps(
        self, t: float, lo: int = 0, hi: Optional[int] = None
    ) -> np.ndarray:
        """Demand of apps ``[lo, hi)`` at time *t* (full range by default)."""
        hi = self.n_apps if hi is None else hi
        if not 0 <= lo <= hi <= self.n_apps:
            raise ValueError(f"bad app range [{lo}, {hi})")
        phase = (
            2.0
            * np.pi
            * (t - self.peak_time_s[lo:hi])
            / self.period_s
        )
        return self.mean_gbps[lo:hi] * (
            1.0 + self.amplitude[lo:hi] * np.cos(phase)
        )

    def cpu_demand(
        self, t: float, lo: int = 0, hi: Optional[int] = None
    ) -> np.ndarray:
        """Demand converted to CPU units via the platform's gbps/cpu ratio."""
        return self.demand_gbps(t, lo, hi) / self.gbps_per_cpu

    def chunks(
        self, t: float, chunk_apps: int
    ) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(lo, hi, cpu_demand[lo:hi])`` covering all apps in order."""
        if chunk_apps < 1:
            raise ValueError("chunk_apps must be positive")
        for lo in range(0, self.n_apps, chunk_apps):
            hi = min(lo + chunk_apps, self.n_apps)
            yield lo, hi, self.cpu_demand(t, lo, hi)

    def materialized(self, t: float) -> np.ndarray:
        """The full demand vector in one array (small-scale reference)."""
        return self.cpu_demand(t)

    def fingerprint(self, t: float, chunk_apps: Optional[int] = None) -> str:
        """SHA-256 over the exact bytes of the demand stream at *t*.

        With ``chunk_apps`` the stream is hashed chunk by chunk; without,
        the materialized vector is hashed whole.  Chunked generation is
        elementwise in the app index, so the two agree for every chunk
        size — the mega driver asserts this once per run.
        """
        h = hashlib.sha256()
        h.update(np.float64(t).tobytes())
        if chunk_apps is None:
            h.update(np.ascontiguousarray(self.materialized(t)).tobytes())
        else:
            for _lo, _hi, vals in self.chunks(t, chunk_apps):
                h.update(np.ascontiguousarray(vals).tobytes())
        return h.hexdigest()
