"""Application popularity: Zipf weights and popularity-aware VIP allocation."""

from __future__ import annotations

import numpy as np


def zipf_weights(n: int, s: float = 0.8) -> np.ndarray:
    """Normalized Zipf(s) popularity over *n* applications (rank 1 most
    popular).  Web-site popularity is classically Zipf with s in [0.6, 1.0].
    """
    if n < 1:
        raise ValueError("need at least one application")
    if s < 0:
        raise ValueError("zipf exponent must be non-negative")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks**-s
    return w / w.sum()


def allocate_vip_counts(
    popularity: np.ndarray, mean_vips: float = 3.0, min_vips: int = 1, max_vips: int = 16
) -> np.ndarray:
    """VIPs per application, proportional to popularity.

    Section IV-A: "we assign three VIPs per application on average (popular
    applications are assigned more than unpopular applications)".  The
    allocation is largest-remainder rounding of ``popularity * n * mean``
    clamped to [min_vips, max_vips], then trimmed/topped-up to hit the total
    budget ``round(n * mean)`` exactly.
    """
    pop = np.asarray(popularity, dtype=float)
    n = pop.shape[0]
    if n == 0:
        return np.zeros(0, dtype=int)
    if mean_vips < min_vips:
        raise ValueError("mean_vips must be >= min_vips")
    budget = int(round(n * mean_vips))
    raw = pop / pop.sum() * budget
    counts = np.clip(np.floor(raw).astype(int), min_vips, max_vips)
    # Largest remainders get the leftover budget, respecting the cap.
    remainder = raw - np.floor(raw)
    order = np.argsort(-remainder, kind="stable")
    deficit = budget - int(counts.sum())
    i = 0
    while deficit > 0 and i < 4 * n:
        idx = order[i % n]
        if counts[idx] < max_vips:
            counts[idx] += 1
            deficit -= 1
        i += 1
    # If over budget (clamping to min_vips overshot), trim the least popular.
    i = n - 1
    while deficit < 0 and i >= 0:
        idx = int(np.argsort(pop, kind="stable")[i % n])
        # trim from least popular apps that are above the floor
        for j in np.argsort(pop, kind="stable"):
            if counts[j] > min_vips:
                counts[j] -= 1
                deficit += 1
                break
        else:
            break
        i -= 1
    return counts
