"""Time-varying demand processes.

A :class:`DemandProcess` maps simulation time (seconds) to offered load.
Units are caller-defined — the system uses Gbps for traffic demand and
normalized CPU units for compute demand (the two are tied together by an
application's ``gbps_per_cpu``).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


class DemandProcess(abc.ABC):
    """Offered load as a function of time."""

    @abc.abstractmethod
    def rate(self, t: float) -> float:
        """Demand at time *t* (>= 0)."""

    def peak(self, t0: float, t1: float, samples: int = 200) -> float:
        """Max demand over a window (sampled)."""
        ts = np.linspace(t0, t1, samples)
        return max(self.rate(float(t)) for t in ts)


@dataclass
class ConstantDemand(DemandProcess):
    level: float

    def __post_init__(self):
        if self.level < 0:
            raise ValueError("demand must be non-negative")

    def rate(self, t: float) -> float:
        return self.level


@dataclass
class StepDemand(DemandProcess):
    """Jump from *before* to *after* at time *at*."""

    before: float
    after: float
    at: float

    def rate(self, t: float) -> float:
        return self.before if t < self.at else self.after


@dataclass
class DiurnalDemand(DemandProcess):
    """Sinusoidal day/night cycle.

    ``mean * (1 + amplitude * cos(2*pi*(t - peak_time)/period))``.
    """

    mean: float
    amplitude: float = 0.5
    period_s: float = 86400.0
    peak_time_s: float = 0.0

    def __post_init__(self):
        if not 0 <= self.amplitude <= 1:
            raise ValueError("amplitude must be in [0, 1]")
        if self.mean < 0:
            raise ValueError("mean must be non-negative")

    def rate(self, t: float) -> float:
        phase = 2 * math.pi * (t - self.peak_time_s) / self.period_s
        return self.mean * (1 + self.amplitude * math.cos(phase))


@dataclass
class FlashCrowdDemand(DemandProcess):
    """A baseline with a sudden multiplicative spike.

    Demand ramps from ``base`` to ``base * spike_factor`` linearly over
    ``ramp_s`` starting at ``start_s``, holds for ``hold_s``, then decays
    exponentially back with time constant ``decay_s``.
    """

    base: float
    spike_factor: float = 8.0
    start_s: float = 600.0
    ramp_s: float = 120.0
    hold_s: float = 600.0
    decay_s: float = 600.0

    def __post_init__(self):
        if self.spike_factor < 1:
            raise ValueError("spike_factor must be >= 1")

    def rate(self, t: float) -> float:
        peak = self.base * self.spike_factor
        if t < self.start_s:
            return self.base
        if t < self.start_s + self.ramp_s:
            frac = (t - self.start_s) / self.ramp_s
            return self.base + (peak - self.base) * frac
        if t < self.start_s + self.ramp_s + self.hold_s:
            return peak
        dt = t - (self.start_s + self.ramp_s + self.hold_s)
        return self.base + (peak - self.base) * math.exp(-dt / self.decay_s)


@dataclass
class RandomWalkDemand(DemandProcess):
    """Mean-reverting multiplicative random walk, pre-sampled on a grid so
    ``rate(t)`` is deterministic and repeatable for a given generator."""

    mean: float
    rng: np.random.Generator
    volatility: float = 0.1
    reversion: float = 0.05
    step_s: float = 60.0
    horizon_s: float = 86400.0
    _grid: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        n = int(self.horizon_s / self.step_s) + 2
        levels = np.empty(n)
        x = 0.0  # log-deviation from mean
        for i in range(n):
            levels[i] = self.mean * math.exp(x)
            x += -self.reversion * x + self.rng.normal(0.0, self.volatility)
        self._grid = levels

    def rate(self, t: float) -> float:
        idx = int(t / self.step_s)
        idx = min(max(idx, 0), len(self._grid) - 1)
        return float(self._grid[idx])


@dataclass
class ScaledDemand(DemandProcess):
    inner: DemandProcess
    factor: float

    def rate(self, t: float) -> float:
        return self.inner.rate(t) * self.factor


@dataclass
class SumDemand(DemandProcess):
    parts: Sequence[DemandProcess]

    def rate(self, t: float) -> float:
        return sum(p.rate(t) for p in self.parts)
