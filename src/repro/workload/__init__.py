"""Synthetic workloads for elastic Internet applications.

The paper's applications "roughly correspond to websites" whose demand "is
often hard to predict in advance".  We generate: Zipf-distributed
application popularity, diurnal demand curves, flash crowds, and session
arrival processes (Poisson / MMPP) for session-level simulations.
"""

from repro.workload.popularity import zipf_weights, allocate_vip_counts
from repro.workload.demand import (
    ConstantDemand,
    DemandProcess,
    DiurnalDemand,
    FlashCrowdDemand,
    RandomWalkDemand,
    ScaledDemand,
    SumDemand,
    StepDemand,
)
from repro.workload.arrivals import PoissonArrivals, MMPPArrivals, lognormal_durations
from repro.workload.apps import AppSpec
from repro.workload.generator import WorkloadBuilder
from repro.workload.streaming import StreamingWorkload

__all__ = [
    "zipf_weights",
    "allocate_vip_counts",
    "DemandProcess",
    "ConstantDemand",
    "DiurnalDemand",
    "FlashCrowdDemand",
    "RandomWalkDemand",
    "StepDemand",
    "ScaledDemand",
    "SumDemand",
    "PoissonArrivals",
    "MMPPArrivals",
    "lognormal_durations",
    "AppSpec",
    "WorkloadBuilder",
    "StreamingWorkload",
]
