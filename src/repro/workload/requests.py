"""Deterministic per-epoch request streams for the traffic data plane.

The streaming demand model (:mod:`repro.workload.streaming`) drives
*placement* — how much CPU each app needs per epoch.  The data plane needs
the same thing one level down: individual client requests, each carrying
the client-side randomness the paper's traffic path consumes (which
resolver asks, which app it wants, the DNS answer draw, the RIP draw, and
how long the TCP session lives).

Determinism contract: all randomness for epoch *e* is drawn **up front**
from ``default_rng([seed, e])`` in one fixed order, as flat arrays.  The
chunked iterator yields views into those arrays, so chunked consumption is
trivially identical to materialized consumption for every chunk size, and
— crucially — the *same* arrays can be replayed request-for-request
through the object data plane (Resolver/LBSwitch/ConnectionTable) and the
columnar one, which is what the differential harness does.  A request's
``u_dns`` belongs to the request, not to a shared stream: a DNS cache hit
simply leaves it unconsumed on both sides.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional

import numpy as np

from repro.dns.policy import weighted_cdf


class RequestChunk:
    """One contiguous slice of an epoch's requests (views, never copies)."""

    __slots__ = ("lo", "hi", "resolver", "app", "u_dns", "u_rip", "duration")

    def __init__(self, lo, hi, resolver, app, u_dns, u_rip, duration):
        self.lo = lo
        self.hi = hi
        self.resolver = resolver
        self.app = app
        self.u_dns = u_dns
        self.u_rip = u_rip
        self.duration = duration

    def __len__(self) -> int:
        return self.hi - self.lo


class RequestStream:
    """Seeded request generator over a fixed universe of (wired) apps.

    Parameters
    ----------
    n_resolvers:
        Client-side resolver population size; each request names one.
    app_weights:
        Relative request popularity per app slot (index = app slot in the
        caller's wired-app universe).  Typically the streaming workload's
        t=0 demand of the wired apps, so hot apps get hot VIPs.
    requests_per_epoch:
        Requests drawn each epoch.
    max_duration_epochs:
        Session length is uniform over ``[1, max_duration_epochs]`` epochs.
    violator_fraction:
        Fraction of resolvers that stretch TTLs (drawn once, seeded).
    """

    def __init__(
        self,
        n_resolvers: int,
        app_weights: np.ndarray,
        requests_per_epoch: int,
        seed: int = 0,
        max_duration_epochs: int = 3,
        violator_fraction: float = 0.1,
    ):
        if n_resolvers < 1:
            raise ValueError("need at least one resolver")
        if requests_per_epoch < 1:
            raise ValueError("need at least one request per epoch")
        if max_duration_epochs < 1:
            raise ValueError("sessions last at least one epoch")
        if not 0.0 <= violator_fraction <= 1.0:
            raise ValueError("violator_fraction must be in [0, 1]")
        self.n_resolvers = int(n_resolvers)
        self.n_apps = int(np.asarray(app_weights).shape[0])
        self.requests_per_epoch = int(requests_per_epoch)
        self.max_duration_epochs = int(max_duration_epochs)
        self.violator_fraction = float(violator_fraction)
        self.seed = int(seed)
        self._app_cdf = weighted_cdf(app_weights)
        self._cache: tuple[int, RequestChunk] | None = None

    # -- resolver population ------------------------------------------
    def violators(self) -> np.ndarray:
        """Boolean TTL-violator mask per resolver (stable across epochs)."""
        rng = np.random.default_rng([self.seed, 0x7F0])
        return rng.random(self.n_resolvers) < self.violator_fraction

    # -- per-epoch draws ----------------------------------------------
    def epoch_requests(self, epoch: int) -> RequestChunk:
        """All of epoch *e*'s requests as one chunk (drawn in fixed order)."""
        if self._cache is not None and self._cache[0] == epoch:
            return self._cache[1]
        n = self.requests_per_epoch
        rng = np.random.default_rng([self.seed, int(epoch)])
        resolver = rng.integers(0, self.n_resolvers, n, dtype=np.int64)
        app = np.searchsorted(self._app_cdf, rng.random(n), side="right")
        u_dns = rng.random(n)
        u_rip = rng.random(n)
        duration = rng.integers(
            1, self.max_duration_epochs + 1, n, dtype=np.int64
        )
        chunk = RequestChunk(0, n, resolver, app, u_dns, u_rip, duration)
        self._cache = (epoch, chunk)
        return chunk

    def chunks(
        self, epoch: int, chunk_requests: Optional[int] = None
    ) -> Iterator[RequestChunk]:
        """Yield epoch *e*'s requests in bounded slices (views)."""
        full = self.epoch_requests(epoch)
        n = len(full)
        step = n if not chunk_requests else int(chunk_requests)
        if step < 1:
            raise ValueError("chunk_requests must be positive")
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            yield RequestChunk(
                lo, hi,
                full.resolver[lo:hi], full.app[lo:hi],
                full.u_dns[lo:hi], full.u_rip[lo:hi], full.duration[lo:hi],
            )

    def fingerprint(self, epoch: int) -> str:
        """SHA-256 over epoch *e*'s exact request bytes."""
        full = self.epoch_requests(epoch)
        h = hashlib.sha256()
        for arr in (full.resolver, full.app, full.u_dns, full.u_rip, full.duration):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()
