"""The simulation environment: clock, agenda, and the run loop.

The agenda is a binary heap of ``(time, priority, sequence, event)`` tuples.
The sequence counter makes ordering total and deterministic: two events
scheduled for the same time and priority are processed in insertion order,
which in turn makes every simulation in this repository exactly repeatable
for a given seed.
"""

from __future__ import annotations

import heapq
from itertools import count
from math import inf
from typing import Any, Generator, Optional, Union

from repro.sim.events import NORMAL, PENDING, URGENT, Event, Timeout
from repro.sim.process import Process


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at an event."""


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default 0.0).  Clock units
        are seconds throughout this repository.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = count()
        self._active_proc: Optional[Process] = None

    # -- clock & agenda --------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place *event* on the agenda ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the agenda is empty."""
        return self._queue[0][0] if self._queue else inf

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process executing *generator*."""
        return Process(self, generator)

    def all_of(self, events) -> Event:
        from repro.sim.events import AllOf

        return AllOf(self, events)

    def any_of(self, events) -> Event:
        from repro.sim.events import AnyOf

        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process the next event on the agenda.

        Raises
        ------
        IndexError
            If the agenda is empty.
        BaseException
            A failed event whose failure nobody defused re-raises here.
        """
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # Nobody handled the failure: crash loudly.
            raise event._value

    def run(self, until: Union[None, float, int, Event] = None) -> Any:
        """Run the simulation.

        * ``run()`` — until the agenda is empty.
        * ``run(until=t)`` — until simulated time *t*; the clock is left at
          exactly *t*.
        * ``run(until=event)`` — until *event* is processed; returns its
          value (or raises its failure).
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:
                    # Already processed.
                    if stop._ok:
                        return stop._value
                    stop._defused = True
                    raise stop._value
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                # URGENT so the clock stops before any user event at `at`.
                heapq.heappush(self._queue, (at, URGENT, next(self._seq), stop))
            stop.callbacks.append(_stop_simulation)

        try:
            while self._queue:
                self.step()
        except StopSimulation as exc:
            ev: Event = exc.args[0]
            if ev._ok:
                return ev._value
            ev._defused = True
            raise ev._value
        if stop is not None and not stop.processed:
            raise RuntimeError("run(until=event) finished before event was triggered")
        return None

    def run_until_empty(self, max_events: int = 10_000_000) -> int:
        """Drain the agenda, returning the number of events processed.

        A guard against runaway simulations: raises ``RuntimeError`` after
        *max_events* steps.
        """
        steps = 0
        while self._queue:
            self.step()
            steps += 1
            if steps >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
        return steps


def _stop_simulation(event: Event) -> None:
    raise StopSimulation(event)
