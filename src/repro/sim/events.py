"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.  It
moves through three states:

* *pending* — created, not yet triggered;
* *triggered* — a value (or failure) has been attached and the event has been
  scheduled on the environment's agenda;
* *processed* — its callbacks have run; waiters have been resumed.

Scheduling priorities break ties among events scheduled for the same time.
Lower values run first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.core import Environment

#: Sentinel for "no value attached yet".
PENDING = object()

#: Scheduling priority for bookkeeping events that must precede user events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1
#: Priority for events that should run after all normal events at a time.
LOW = 2


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The optional *cause* passed to :meth:`repro.sim.process.Process.interrupt`
    is available as :attr:`cause`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that may succeed with a value or fail.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callbacks invoked (in order) when the event is processed.  Set to
        #: ``None`` once processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or failure has been attached."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise AttributeError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise AttributeError("event not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Attach *value*, mark success, and schedule the event now."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Attach a failure and schedule the event now.

        If no waiter handles (defuses) the failure, the exception propagates
        out of :meth:`Environment.step` to crash the simulation — silent
        failures are bugs.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=0.0, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another (triggered) event onto this one."""
        if event._value is PENDING:
            raise RuntimeError("source event not triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not crash the kernel."""
        self._defused = True

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed *delay*.

    Created via :meth:`Environment.timeout`; it is triggered immediately at
    construction (the delay lives in the agenda).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Condition(Event):
    """Base for composite events over a fixed set of sub-events.

    The condition's value is a dict mapping each *triggered-ok* sub-event to
    its value at the moment the condition fired.
    """

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: tuple[Event, ...] = tuple(events)
        self._count = 0
        for event in self.events:
            if event.env is not env:
                raise ValueError("events from different environments")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return  # already fired
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count: a Timeout carries its value from
        # creation, but it has not "happened" until its callbacks ran.
        return {e: e._value for e in self.events if e.callbacks is None and e._ok}


class AllOf(Condition):
    """Fires when every sub-event has succeeded; fails fast on any failure."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self.events)


class AnyOf(Condition):
    """Fires as soon as any sub-event succeeds."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1
