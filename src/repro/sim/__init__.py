"""Deterministic discrete-event simulation kernel.

This is the substrate every other subsystem runs on.  The API follows the
conventions popularised by SimPy (environments, generator-based processes,
events, resources) but is implemented from scratch so the reproduction has no
external runtime dependencies and fully deterministic event ordering:
simultaneous events are ordered by (time, priority, insertion sequence).

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2))
>>> _ = env.process(worker(env, "b", 1))
>>> env.run()
>>> log
[(1, 'b'), (2, 'a')]
"""

from repro.sim.core import Environment, StopSimulation
from repro.sim.events import (
    PENDING,
    URGENT,
    NORMAL,
    LOW,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.resources import Container, PriorityRequest, Request, Resource
from repro.sim.store import FilterStore, Store
from repro.sim.monitor import Tally, TimeSeries, UtilizationMonitor
from repro.sim.rng import RngHub, stable_hash

__all__ = [
    "Environment",
    "StopSimulation",
    "Event",
    "Timeout",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Process",
    "Resource",
    "Request",
    "PriorityRequest",
    "Container",
    "Store",
    "FilterStore",
    "Tally",
    "TimeSeries",
    "UtilizationMonitor",
    "RngHub",
    "stable_hash",
    "PENDING",
    "URGENT",
    "NORMAL",
    "LOW",
]
