"""Generator-based simulation processes.

A process wraps a Python generator that yields events.  When a yielded event
is processed the process is resumed with the event's value (or the event's
exception is thrown into the generator).  A process is itself an event that
triggers when the generator returns (value = the generator's return value)
or raises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import NORMAL, PENDING, URGENT, Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Process(Event):
    """An active simulation process (and the event of its termination)."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # The event this process is currently waiting on.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init, priority=URGENT)
        self._target: Optional[Event] = init

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the next step.

        The process stops waiting on its current target (the target event
        itself is unaffected and may still fire; its value is simply no
        longer delivered to this process).  A process interrupted before
        its first step still runs up to its first yield, then receives the
        interrupt there (an exception cannot be thrown into an unstarted
        generator).
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already terminated")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True  # delivered via throw; never "unhandled"
        event.callbacks.append(self._deliver_interrupt)
        self.env.schedule(event, priority=URGENT)

    def _deliver_interrupt(self, event: Event) -> None:
        """Unsubscribe from the current target and resume with the
        failure — at delivery time, so a pre-start interrupt arrives only
        after the initializer has advanced the generator to its first
        yield."""
        if self._value is not PENDING:
            return  # terminated in the meantime; drop silently
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = event
        self._resume(event)

    # -- internal ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of *event*."""
        env = self.env
        env._active_proc = self
        try:
            while True:
                try:
                    if event._ok:
                        target = self._generator.send(event._value)
                    else:
                        # The waiter is handling the failure.
                        event._defused = True
                        target = self._generator.throw(event._value)
                except StopIteration as exc:
                    self._target = None
                    self.succeed(exc.value)
                    return
                except BaseException as exc:
                    self._target = None
                    self.fail(exc)
                    return

                if not isinstance(target, Event):
                    exc = RuntimeError(
                        f"process yielded a non-event: {target!r}"
                    )
                    try:
                        self._generator.throw(exc)
                    except StopIteration as stop:
                        self._target = None
                        self.succeed(stop.value)
                        return
                    except BaseException as raised:
                        self._target = None
                        self.fail(raised)
                        return
                    raise exc  # pragma: no cover - generator swallowed it oddly

                if target.callbacks is not None:
                    # Not yet processed: subscribe and suspend.
                    target.callbacks.append(self._resume)
                    self._target = target
                    return
                # Already processed: resume immediately with its outcome.
                event = target
        finally:
            env._active_proc = None
