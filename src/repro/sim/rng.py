"""Seeded random-number streams.

Every stochastic component draws from a named substream of a single master
seed, so (a) whole simulations are reproducible from one integer and (b)
adding a new random component does not perturb the draws of existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np


def stable_hash(*key: Any) -> int:
    """A process-invariant 64-bit hash of a tuple of printable values.

    Python's builtin ``hash`` is salted per process; this one is stable
    across runs, which is what reproducible seeding needs.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngHub:
    """Factory of independent, deterministically-derived RNG streams.

    >>> hub = RngHub(seed=42)
    >>> r1 = hub.stream("arrivals", "app-3")
    >>> r2 = hub.stream("arrivals", "app-3")
    >>> r1 is r2
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[tuple, np.random.Generator] = {}

    def stream(self, *key: Any) -> np.random.Generator:
        """Return (and cache) the generator for *key*."""
        if key not in self._streams:
            ss = np.random.SeedSequence(entropy=(self.seed, stable_hash(*key)))
            self._streams[key] = np.random.default_rng(ss)
        return self._streams[key]

    def fresh(self, *key: Any) -> np.random.Generator:
        """A brand-new generator for *key* (not cached, same derivation)."""
        ss = np.random.SeedSequence(entropy=(self.seed, stable_hash(*key)))
        return np.random.default_rng(ss)

    def spawn(self, *key: Any) -> "RngHub":
        """A child hub whose streams are independent of this hub's."""
        return RngHub(stable_hash(self.seed, *key))
