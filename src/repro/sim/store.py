"""Object stores: FIFO queues of arbitrary items with blocking get.

Used throughout the control plane, e.g. the global manager's serialized
VIP/RIP request queue is a :class:`Store` of request objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class _StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, env: "Environment", filt: Optional[Callable[[Any], bool]] = None):
        super().__init__(env)
        self.filter = filt


class Store:
    """An unbounded (or bounded) FIFO store of items."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[_StoreGet] = []
        self._putters: list[tuple[Event, Any]] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Append *item*; blocks while the store is full."""
        ev = Event(self.env)
        self._putters.append((ev, item))
        self._settle()
        return ev

    def get(self) -> Event:
        """Pop the oldest matching item; the event's value is the item."""
        ev = _StoreGet(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def _match(self, getter: _StoreGet) -> Optional[int]:
        if getter.filter is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if getter.filter(item):
                return i
        return None

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                ev, item = self._putters.pop(0)
                self.items.append(item)
                ev.succeed()
                progressed = True
            # Serve getters in FIFO order; skip those with no matching item.
            remaining: list[_StoreGet] = []
            for getter in self._getters:
                idx = self._match(getter)
                if idx is None:
                    remaining.append(getter)
                else:
                    getter.succeed(self.items.pop(idx))
                    progressed = True
            self._getters = remaining


class FilterStore(Store):
    """A store whose getters may specify a predicate over items."""

    def get(self, filt: Optional[Callable[[Any], bool]] = None) -> Event:  # type: ignore[override]
        ev = _StoreGet(self.env, filt)
        self._getters.append(ev)
        self._settle()
        return ev
