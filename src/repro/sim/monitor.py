"""Measurement primitives: tallies, step time series, utilization monitors.

These are the only sanctioned way experiments read results out of a
simulation; benchmarks never poke at component internals.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Tally:
    """Online statistics over discrete observations (Welford's algorithm).

    Count, mean, variance, min and max are exact regardless of how many
    values are observed.  Raw values — which percentiles are computed
    from — are retained in a *bounded reservoir* (uniform reservoir
    sampling, deterministic per tally name): exact up to
    ``reservoir_size`` observations, an unbiased sample beyond that.
    Pass ``keep_values=True`` to opt into unbounded retention and exact
    percentiles at any count.
    """

    def __init__(
        self,
        name: str = "",
        keep_values: bool = False,
        reservoir_size: int = 4096,
    ):
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._keep_values = keep_values
        self._reservoir_size = int(reservoir_size)
        self._values: list[float] = []
        self._rng: Optional[np.random.Generator] = None

    def observe(self, value: float) -> None:
        v = float(value)
        self._n += 1
        delta = v - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (v - self._mean)
        self._min = min(self._min, v)
        self._max = max(self._max, v)
        if self._keep_values or self._n <= self._reservoir_size:
            self._values.append(v)
        else:
            # Algorithm R: each of the n values seen so far has equal
            # probability reservoir_size/n of being retained.
            if self._rng is None:
                from repro.sim.rng import stable_hash

                self._rng = np.random.default_rng(
                    stable_hash("tally-reservoir", self.name, self._reservoir_size)
                )
            j = int(self._rng.integers(0, self._n))
            if j < self._reservoir_size:
                self._values[j] = v

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        """Sum of all observations (0.0 when empty)."""
        return self._mean * self._n

    @property
    def mean(self) -> float:
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self._n - 1) if self._n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._n else math.nan

    def percentile(self, q: float) -> Optional[float]:
        """q in [0, 100].  Exact while the reservoir has not overflowed
        (or with ``keep_values=True``); a sample estimate beyond that.
        Returns ``None`` when no values have been observed — callers
        report "no data" rather than propagating NaN into summaries."""
        if not self._values:
            return None
        return float(np.percentile(np.asarray(self._values), q))

    @property
    def retained_count(self) -> int:
        """How many raw values are currently held (bounded unless
        ``keep_values=True``)."""
        return len(self._values)

    def values(self) -> np.ndarray:
        """The retained raw values (a reservoir sample once ``count``
        exceeds the reservoir size)."""
        return np.asarray(self._values, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Tally {self.name!r} n={self._n} mean={self.mean:.4g}>"


class TimeSeries:
    """A right-continuous step function sampled by :meth:`observe`.

    ``observe(v)`` records that the monitored quantity equals *v* from the
    current simulation time until the next observation.
    """

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        t = self.env.now
        if self._times and self._times[-1] == t:
            # Same-instant update: keep the latest value only.
            self._values[-1] = float(value)
        else:
            self._times.append(t)
            self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def current(self) -> float:
        return self._values[-1] if self._values else math.nan

    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def value_at(self, t: float) -> float:
        """Value of the step function at time *t*."""
        if not self._times or t < self._times[0]:
            return math.nan
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return self._values[idx]

    def time_average(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Time-weighted mean over [t0, t1] (defaults: first obs .. now)."""
        if not self._times:
            return math.nan
        t0 = self._times[0] if t0 is None else t0
        t1 = self.env.now if t1 is None else t1
        if t1 <= t0:
            return self.value_at(t0)
        times = np.asarray(self._times + [t1], dtype=float)
        vals = np.asarray(self._values, dtype=float)
        # Clip the step boundaries to the window.
        starts = np.clip(times[:-1], t0, t1)
        ends = np.clip(times[1:], t0, t1)
        widths = ends - starts
        total = float(np.dot(widths, vals))
        return total / (t1 - t0)

    def maximum(self, t0: float = -math.inf, t1: float = math.inf) -> float:
        if not self._times:
            return math.nan
        times = self.times()
        vals = self.values()
        mask = (times <= t1) & (np.append(times[1:], math.inf) >= t0)
        if not mask.any():
            return math.nan
        return float(vals[mask].max())

    def first_time_below(self, threshold: float, after: float = 0.0) -> float:
        """First observation time >= *after* with value < threshold, or inf."""
        for t, v in zip(self._times, self._values):
            if t >= after and v < threshold:
                return t
        return math.inf

    def first_time_above(self, threshold: float, after: float = 0.0) -> float:
        for t, v in zip(self._times, self._values):
            if t >= after and v > threshold:
                return t
        return math.inf


class UtilizationMonitor:
    """Tracks a load level against a capacity as a step function.

    Convenience wrapper used by servers, links and switches.
    """

    def __init__(self, env: "Environment", capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = float(capacity)
        self.series = TimeSeries(env, name)
        self.series.observe(0.0)

    @property
    def load(self) -> float:
        return self.series.current

    @property
    def utilization(self) -> float:
        return self.series.current / self.capacity

    def set_load(self, load: float) -> None:
        self.series.observe(float(load))

    def add_load(self, delta: float) -> None:
        self.series.observe(self.series.current + float(delta))

    def mean_utilization(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        return self.series.time_average(t0, t1) / self.capacity

    def overloaded_fraction(self, threshold: float = 1.0) -> float:
        """Fraction of elapsed time spent above threshold*capacity."""
        if len(self.series) == 0:
            return 0.0
        times = np.append(self.series.times(), self.env.now)
        vals = self.series.values()
        widths = np.diff(times)
        total = times[-1] - times[0]
        if total <= 0:
            return 0.0
        over = widths[vals > threshold * self.capacity].sum()
        return float(over / total)
