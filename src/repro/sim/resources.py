"""Shared-resource primitives: counted resources and continuous containers.

:class:`Resource` models a pool of identical slots (e.g. a pod manager's
reconfiguration executor, an access-router update slot).  :class:`Container`
models a continuous quantity (e.g. spare capacity in a pod).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ... # slot held here
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungrated request from the wait queue."""
        self.resource.release(self)


class PriorityRequest(Request):
    """A request with a priority; lower values are served first.

    Ties are broken FIFO by insertion sequence.
    """

    __slots__ = ("priority", "seq")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource)
        self.priority = priority
        self.seq = next(resource._seq)

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class Resource:
    """A pool of *capacity* identical slots with a FIFO (or priority) queue."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []
        self._seq = count()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        self.queue.append(req)
        self._grant()
        return req

    def priority_request(self, priority: int = 0) -> PriorityRequest:
        req = PriorityRequest(self, priority)
        heapq.heappush(self.queue, req)  # type: ignore[arg-type]
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a slot (or withdraw a queued request)."""
        if request in self.users:
            self.users.remove(request)
            self._grant()
        else:
            try:
                self.queue.remove(request)
                if isinstance(request, PriorityRequest):
                    heapq.heapify(self.queue)  # type: ignore[arg-type]
            except ValueError:
                pass  # releasing twice is a no-op

    def _grant(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            if isinstance(self.queue[0], PriorityRequest):
                req = heapq.heappop(self.queue)  # type: ignore[arg-type]
            else:
                req = self.queue.pop(0)
            self.users.append(req)
            req.succeed()


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, env: "Environment", amount: float):
        super().__init__(env)
        self.amount = amount


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, env: "Environment", amount: float):
        super().__init__(env)
        self.amount = amount


class Container:
    """A continuous quantity with blocking put/get.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Maximum level (default unbounded).
    init:
        Initial level.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._puts: list[_ContainerPut] = []
        self._gets: list[_ContainerGet] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        """Add *amount*; blocks (event pends) while it would overflow."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = _ContainerPut(self.env, amount)
        self._puts.append(ev)
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove *amount*; blocks while the level is insufficient."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = _ContainerGet(self.env, amount)
        self._gets.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts and self._level + self._puts[0].amount <= self.capacity:
                ev = self._puts.pop(0)
                self._level += ev.amount
                ev.succeed()
                progressed = True
            if self._gets and self._level >= self._gets[0].amount:
                ev = self._gets.pop(0)
                self._level -= ev.amount
                ev.succeed()
                progressed = True
