"""Command-line interface: run experiments and demos without writing code.

Usage::

    python -m repro list
    python -m repro run e04                 # one experiment, prints its table(s)
    python -m repro run e02 e12             # several
    python -m repro run all                 # the full suite (slow)
    python -m repro quickstart              # build + run a small platform
    python -m repro faults --seed 42        # scripted failure-recovery scenario
    python -m repro controlplane --seed 42  # manager crash + journal replay
    python -m repro bench --quick           # pinned perf workloads -> BENCH_*.json
    python -m repro mega --quick            # bounded-memory paper-scale lane
    python -m repro dataplane --quick       # columnar steering lane -> BENCH_dataplane.json
    python -m repro trace summary run.jsonl # per-kind counts + digest
    python -m repro trace diff a.jsonl b.jsonl  # first divergence, exit 1 if differ
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

#: experiment id -> (module, callable, kwargs, description)
EXPERIMENTS: dict[str, tuple[str, str, dict, str]] = {
    "e01": ("e01_architecture", "run", {}, "Fig.1 end-to-end architecture"),
    "e02": ("e02_placement_scalability", "run", {}, "placement runtime vs scale"),
    "e03": ("e03_fabric_sizing", "run", {}, "LB fabric sizing arithmetic"),
    "e04": ("e04_selective_exposure", "run", {}, "K1 exposure vs naive BGP"),
    "e05": ("e05_vip_transfer", "run", {}, "K2 transfer: pause prob + balance"),
    "e06": ("e06_server_transfer", "run", {}, "K3 transfer + elephant pods"),
    "e07": ("e07_dynamic_deployment", "run", {}, "K4 relief vs turbulence"),
    "e08": ("e08_agility", "run", {}, "knob reaction latencies"),
    "e09": ("e09_viprip_manager", "run", {}, "VIP/RIP manager throughput"),
    "e10": ("e10_two_layer", "run", {}, "single vs two-LB-layer conflict"),
    "e11": ("e11_vip_tradeoff", "run", {}, "VIPs-per-app trade-off"),
    "e12": ("e12_quality", "run", {}, "placement quality comparison"),
    "e13": ("e13_failure_recovery", "run", {}, "fault injection + graceful recovery"),
    "e14": ("e14_control_plane", "run", {}, "control-plane crash safety + anti-entropy"),
    "e15": ("e15_parallel_scaling", "run", {}, "parallel pod-epoch scaling sweep"),
    "e16": (
        "e16_sharded_control_plane",
        "run",
        {},
        "sharded control plane: throughput / conflicts / convergence",
    ),
    "e17": (
        "e17_mega_scale",
        "run",
        {},
        "mega scale: paper Section I size through the bounded-memory driver",
    ),
    "e18": (
        "e18_mega_faults",
        "run",
        {},
        "mega faults: pod losses + server crashes through the unified "
        "loop; MTTR, drop and RIP-mirror accounting",
    ),
    "e19": (
        "e19_dataplane",
        "run",
        {},
        "mega data plane: columnar request steering + K1/K2 knobs at "
        "scale, raced against the object path",
    ),
    "a1": ("ablations", "run_pod_size", {}, "ablation: pod size"),
    "a2": ("ablations", "run_drain_ablation", {}, "ablation: K2 drain-first"),
    "a3": ("ablations", "run_damping_ablation", {}, "ablation: K1 damping"),
    "a4": ("ablations", "run_compartmentalization", {}, "ablation: switch pooling"),
    "x1": ("extensions", "run_energy", {}, "extension: energy/consolidation"),
    "x2": ("extensions", "run_link_costs", {}, "extension: link usage costs"),
    "x3": ("extensions", "run_coplacement", {}, "extension: tier co-placement"),
}


def _tables_of(result) -> list:
    tables = [result.table()]
    extra = getattr(result, "balance_table", None)
    if callable(extra):
        tables.append(extra())
    return tables


def run_experiment(exp_id: str, out=None) -> None:
    out = out if out is not None else sys.stdout
    module_name, fn_name, kwargs, _ = EXPERIMENTS[exp_id]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    fn = getattr(module, fn_name)
    t0 = time.perf_counter()
    result = fn(**kwargs)
    elapsed = time.perf_counter() - t0
    for table in _tables_of(result):
        print(file=out)
        print(table.render(), file=out)
    print(f"  [{exp_id} finished in {elapsed:.1f}s]", file=out)


def cmd_list(out=None) -> None:
    out = out if out is not None else sys.stdout
    print("available experiments:", file=out)
    for exp_id, (_, _, _, desc) in EXPERIMENTS.items():
        print(f"  {exp_id:>4}  {desc}", file=out)


def cmd_quickstart(out=None) -> None:
    out = out if out is not None else sys.stdout
    from repro.core import MegaDataCenter, PlatformConfig
    from repro.sim import RngHub
    from repro.workload import WorkloadBuilder

    apps = WorkloadBuilder(n_apps=20, total_gbps=10.0, rng_hub=RngHub(0)).build()
    dc = MegaDataCenter(
        apps, config=PlatformConfig(), n_pods=3, servers_per_pod=8, n_switches=4
    )
    dc.run(1800.0)
    print(f"satisfied: {dc.satisfied.current:.1%}", file=out)
    print(f"links:     {dc.link_utilizations()}", file=out)
    print(f"invariants hold: {dc.invariants_ok()}", file=out)


def cmd_faults(
    seed: int,
    duration_s: float,
    serialized: bool,
    fail_link: bool,
    out=None,
) -> int:
    """Run the scripted failure-recovery scenario and print its report."""
    out = out if out is not None else sys.stdout
    from repro.experiments.e13_failure_recovery import run as run_e13

    try:
        result = run_e13(
            seed=seed,
            duration_s=duration_s,
            serialized_reconfig=serialized,
            fail_link=fail_link,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(file=out)
    print(result.table().render(), file=out)
    return 0 if result.recovered else 1


def cmd_controlplane(
    seed: int,
    duration_s: float,
    checkpoint_intervals: list[float] | None,
    shards: list[int] | None = None,
    out=None,
) -> int:
    """Run the control-plane crash-safety scenario and print its report.

    Exit status 0 means the scripted manager crash mid-``move_vip`` was
    recovered via journal replay and the injected drift was repaired by
    the anti-entropy reconciler within its convergence bound.

    With ``--shards`` the sharded scenario (E16) runs instead: a
    reconfiguration storm plus seeded shard crashes / partitions, and
    exit 0 means throughput scaled monotonically with shard count and
    every chaos case converged to a clean drift report.
    """
    out = out if out is not None else sys.stdout
    if shards:
        from repro.experiments.e16_sharded_control_plane import run as run_e16

        try:
            result = run_e16(seed=seed, shards=tuple(sorted(set(shards))))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(file=out)
        print(result.table().render(), file=out)
        return 0 if result.accepted else 1
    from repro.experiments.e14_control_plane import DEFAULT_INTERVALS, run as run_e14

    intervals = (
        tuple(checkpoint_intervals) if checkpoint_intervals else DEFAULT_INTERVALS
    )
    try:
        result = run_e14(
            seed=seed, duration_s=duration_s, checkpoint_intervals=intervals
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(file=out)
    print(result.table().render(), file=out)
    for monitor in result.monitors[:1]:
        print(file=out)
        print(monitor.table().render(), file=out)
    return 0 if result.recovered else 1


def cmd_trace_summary(paths: list[str], out=None) -> int:
    """Summarize one or more JSONL trace files."""
    out = out if out is not None else sys.stdout
    from repro.obs import summarize_trace

    status = 0
    for path in paths:
        try:
            s = summarize_trace(path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"{path}: error: {exc}", file=sys.stderr)
            status = 2
            continue
        span = (
            f"t=[{s['t_first']:g}, {s['t_last']:g}]"
            if s["events"]
            else "empty"
        )
        print(f"{path}: {s['events']} events, {span}", file=out)
        print(f"  digest {s['digest']}", file=out)
        for kind in sorted(s["kinds"]):
            print(f"  {kind:>16}  {s['kinds'][kind]}", file=out)
    return status


def cmd_trace_diff(path_a: str, path_b: str, out=None) -> int:
    """Diff two trace files; exit 0 iff they are identical."""
    out = out if out is not None else sys.stdout
    from repro.obs import diff_traces

    try:
        d = diff_traces(path_a, path_b)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for side in ("a", "b"):
        info = d[side]
        print(
            f"{side}: {info['path']}  events={info['events']}  "
            f"digest={info['digest'][:16]}…",
            file=out,
        )
    if d["identical"]:
        print("traces identical", file=out)
        return 0
    div = d["first_divergence"]
    print(f"first divergence at event #{div['index']}:", file=out)
    print(f"  a: {div['a']}", file=out)
    print(f"  b: {div['b']}", file=out)
    if d["kind_delta"]:
        print(f"event-count delta (b - a): {d['kind_delta']}", file=out)
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Mega Data Center for Elastic Internet Applications'",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run one or more experiments")
    run_p.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    sub.add_parser("quickstart", help="build and run a small platform")
    faults_p = sub.add_parser(
        "faults", help="run the scripted failure-recovery scenario"
    )
    faults_p.add_argument("--seed", type=int, default=42, help="scenario seed")
    faults_p.add_argument(
        "--duration", type=float, default=3600.0, help="simulated seconds"
    )
    faults_p.add_argument(
        "--serialized",
        action="store_true",
        help="route recovery through the serialized VIP/RIP manager",
    )
    faults_p.add_argument(
        "--fail-link",
        action="store_true",
        help="also fail one access link (exercises the K1 re-steer)",
    )
    cp_p = sub.add_parser(
        "controlplane",
        help="run the control-plane crash-safety scenario (journal replay "
        "+ anti-entropy reconciliation)",
    )
    cp_p.add_argument("--seed", type=int, default=42, help="scenario seed")
    cp_p.add_argument(
        "--duration", type=float, default=1800.0, help="simulated seconds"
    )
    cp_p.add_argument(
        "--checkpoint-interval",
        type=float,
        action="append",
        dest="checkpoint_intervals",
        metavar="SECONDS",
        help="checkpoint interval to sweep (repeatable; default 60/240/960)",
    )
    cp_p.add_argument(
        "--shards",
        type=int,
        action="append",
        dest="shards",
        metavar="N",
        help="run the sharded scenario (E16) at this shard count instead "
        "(repeatable, e.g. --shards 1 --shards 2 --shards 4)",
    )
    bench_p = sub.add_parser(
        "bench",
        help="run pinned perf workloads; writes BENCH_placement.json / "
        "BENCH_network.json / BENCH_controlplane.json",
    )
    bench_p.add_argument(
        "--quick",
        action="store_true",
        help="small fixtures only (the CI smoke lane)",
    )
    bench_p.add_argument(
        "--out", default=".", metavar="DIR", help="where to write BENCH_*.json"
    )
    bench_p.add_argument(
        "--workers",
        type=int,
        default=4,
        help="parallel engine width for the pod-epoch workload",
    )
    bench_p.add_argument(
        "--baseline",
        metavar="DIR",
        help="directory holding baseline BENCH_*.json to gate against",
    )
    bench_p.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail if any guarded wall time exceeds baseline x this ratio",
    )
    bench_p.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail if a parallel workload's speedup falls below X "
        "(skipped with a warning when the runner has fewer cores than "
        "the workload's workers)",
    )
    mega_p = sub.add_parser(
        "mega",
        help="run the paper-scale bounded-memory epoch driver; writes "
        "BENCH_mega.json and gates peak RSS",
    )
    mega_p.add_argument(
        "--quick",
        action="store_true",
        help="1/10 scale (the CI mega-smoke lane); default is the paper's "
        "300k servers / 300k apps / ~6M VMs",
    )
    mega_p.add_argument(
        "--epochs", type=int, default=2, help="placement epochs to run"
    )
    mega_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel engine width (worker-resident pods)",
    )
    mega_p.add_argument(
        "--out", default=".", metavar="DIR", help="where to write BENCH_mega.json"
    )
    mega_p.add_argument(
        "--baseline",
        metavar="DIR",
        help="directory holding a baseline BENCH_mega.json to gate against",
    )
    mega_p.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail if a guarded metric exceeds baseline x this ratio",
    )
    mega_p.add_argument(
        "--max-rss-mb",
        type=float,
        default=8192.0,
        help="fail if peak RSS exceeds this many MB (acceptance budget)",
    )
    mega_p.add_argument(
        "--faults",
        action="store_true",
        help="also run the fault lane (E18's scripted fail/repair cycle); "
        "adds a mega_faults workload entry gated on recovery, MTTR and "
        "the RIP-mirror CRC",
    )
    dp_p = sub.add_parser(
        "dataplane",
        help="run the mega traffic data plane lane (E19); writes "
        "BENCH_dataplane.json and gates throughput, the object-path "
        "speedup and peak RSS",
    )
    dp_p.add_argument(
        "--quick",
        action="store_true",
        help="1/10 scale with the object data plane racing the same "
        "stream (the CI dataplane-smoke lane); default is 300k servers",
    )
    dp_p.add_argument(
        "--epochs", type=int, default=4, help="steered epochs to run"
    )
    dp_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel engine width for the placement half of the loop",
    )
    dp_p.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="where to write BENCH_dataplane.json",
    )
    dp_p.add_argument(
        "--baseline",
        metavar="DIR",
        help="directory holding a baseline BENCH_dataplane.json to gate "
        "against",
    )
    dp_p.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail if a guarded metric exceeds baseline x this ratio",
    )
    dp_p.add_argument(
        "--max-rss-mb",
        type=float,
        default=8192.0,
        help="fail if peak RSS exceeds this many MB (acceptance budget)",
    )
    dp_p.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        metavar="X",
        help="fail if the columnar path is not at least X times faster "
        "than the object path (checked when the race runs, i.e. --quick)",
    )
    trace_p = sub.add_parser(
        "trace", help="summarize or diff JSONL trace files"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    trace_sum_p = trace_sub.add_parser(
        "summary", help="per-kind event counts, time span and content digest"
    )
    trace_sum_p.add_argument("files", nargs="+", metavar="FILE")
    trace_diff_p = trace_sub.add_parser(
        "diff",
        help="compare two traces; exit 1 and show the first divergence "
        "if they differ",
    )
    trace_diff_p.add_argument("file_a", metavar="A")
    trace_diff_p.add_argument("file_b", metavar="B")

    args = parser.parse_args(argv)
    if args.command == "list":
        cmd_list()
        return 0
    if args.command == "quickstart":
        cmd_quickstart()
        return 0
    if args.command == "faults":
        return cmd_faults(
            args.seed, args.duration, args.serialized, args.fail_link
        )
    if args.command == "controlplane":
        return cmd_controlplane(
            args.seed, args.duration, args.checkpoint_intervals, args.shards
        )
    if args.command == "bench":
        from repro.perf.bench import cmd_bench

        return cmd_bench(
            quick=args.quick,
            out_dir=args.out,
            workers=args.workers,
            baseline=args.baseline,
            max_regression=args.max_regression,
            min_speedup=args.min_speedup,
        )
    if args.command == "mega":
        from repro.perf.bench import cmd_mega

        return cmd_mega(
            quick=args.quick,
            out_dir=args.out,
            workers=args.workers,
            epochs=args.epochs,
            baseline=args.baseline,
            max_regression=args.max_regression,
            max_rss_mb=args.max_rss_mb,
            faults=args.faults,
        )
    if args.command == "dataplane":
        from repro.perf.bench import cmd_dataplane

        return cmd_dataplane(
            quick=args.quick,
            out_dir=args.out,
            workers=args.workers,
            epochs=args.epochs,
            baseline=args.baseline,
            max_regression=args.max_regression,
            max_rss_mb=args.max_rss_mb,
            min_speedup=args.min_speedup,
        )
    if args.command == "trace":
        if args.trace_command == "summary":
            return cmd_trace_summary(args.files)
        return cmd_trace_diff(args.file_a, args.file_b)
    ids = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        cmd_list(out=sys.stderr)
        return 2
    for exp_id in ids:
        run_experiment(exp_id)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
