"""Topology analysis: bisection bandwidth, oversubscription, guarantees.

These quantify the paper's premise (Section III-B): modern topologies
"guarantee bandwidth between any host-pair within the data center", which is
what permits placing LB switches at the access network instead of next to
the servers.
"""

from __future__ import annotations

import networkx as nx

from repro.topology.base import NodeKind, Topology


def bisection_bandwidth(topo: Topology) -> float:
    """Capacity (Gbps) of the minimum cut separating two balanced halves of
    the hosts (hosts sorted by name; first half vs second half).

    For the symmetric topologies built here this equals the true bisection
    bandwidth; for arbitrary graphs it is an upper bound on it (one specific
    bisection).
    """
    hosts = sorted(h.name for h in topo.hosts)
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    half = len(hosts) // 2
    left, right = hosts[:half], hosts[half:]

    g = nx.Graph()
    for link in topo.links():
        g.add_edge(link.a, link.b, capacity=link.capacity_gbps)
    src, dst = "__S__", "__T__"
    for h in left:
        g.add_edge(src, h, capacity=float("inf"))
    for h in right:
        g.add_edge(h, dst, capacity=float("inf"))
    cut_value, _ = nx.minimum_cut(g, src, dst, capacity="capacity")
    return float(cut_value)


def oversubscription_ratio(topo: Topology) -> float:
    """Worst-case end-to-end oversubscription for cross-core traffic.

    Computed tier by tier: for every edge switch, the ratio of host-facing
    to upstream capacity; likewise for every aggregation switch; the result
    is the product of the worst per-tier ratios (>= 1; 1.0 means full
    bisection at every tier).
    """

    def tier_ratio(kind: NodeKind, down_kind: NodeKind, up_kind: NodeKind) -> float:
        worst = 1.0
        for node in topo.nodes(kind):
            down = up = 0.0
            for nb in topo.neighbors(node.name):
                cap = topo.link_capacity(node.name, nb)
                nb_kind = topo.node(nb).kind
                if nb_kind == down_kind:
                    down += cap
                elif nb_kind == up_kind:
                    up += cap
            if up > 0 and down > 0:
                worst = max(worst, down / up)
        return worst

    edge_ratio = tier_ratio(NodeKind.EDGE, NodeKind.HOST, NodeKind.AGG)
    agg_ratio = tier_ratio(NodeKind.AGG, NodeKind.EDGE, NodeKind.CORE)
    return edge_ratio * agg_ratio


def host_pair_guarantee(topo: Topology) -> float:
    """Fraction of its NIC rate a host is guaranteed under a worst-case
    all-hosts permutation workload (hose model):
    ``bisection_bandwidth / (num_hosts / 2) / host_rate``, capped at 1.

    1.0 for fat-tree/VL2 (the "guaranteed bandwidth between any host pair"
    premise); < 1 for oversubscribed trees.
    """
    hosts = topo.hosts
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    host_rate = min(topo.host_uplink_gbps(h.name) for h in hosts)
    per_host = bisection_bandwidth(topo) / (len(hosts) / 2)
    return min(1.0, per_host / host_rate)
