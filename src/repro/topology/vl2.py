"""VL2 Clos network (Greenberg et al. — SIGCOMM 2009).

VL2 is a folded Clos: ToR switches uplink (at 10 Gbps in the paper) to two
aggregation switches; every aggregation switch connects to every
intermediate switch.  Valiant load balancing over the intermediates gives a
uniform-capacity "virtual layer 2" with full bisection bandwidth, plus a
flat address space (AAs over LAs) — the second property the paper's
architecture needs.

With ``da``-port aggregation and ``di``-port intermediate switches, VL2
supports ``da * di / 4`` ToRs.
"""

from __future__ import annotations

from repro.topology.base import Node, NodeKind, Topology


class VL2(Topology):
    """Build a VL2 Clos topology.

    Parameters
    ----------
    da:
        Aggregation-switch port count (even).  ``da/2`` ports face the
        intermediates, ``da/2`` face ToRs.
    di:
        Intermediate-switch port count; equals the number of aggregation
        switches.
    servers_per_tor:
        Hosts attached to each ToR (VL2 paper uses 20).
    tor_uplink_gbps / server_gbps:
        Link rates (VL2: 10 G uplinks, 1 G server links).
    """

    def __init__(
        self,
        da: int = 4,
        di: int = 4,
        servers_per_tor: int = 4,
        tor_uplink_gbps: float = 10.0,
        server_gbps: float = 1.0,
    ):
        if da < 2 or da % 2 != 0:
            raise ValueError(f"da must be even and >= 2, got {da}")
        if di < 1:
            raise ValueError(f"di must be >= 1, got {di}")
        super().__init__(name=f"vl2-da{da}-di{di}")
        self.da, self.di = da, di
        self.servers_per_tor = servers_per_tor

        n_int = da // 2
        n_agg = di
        n_tor = (da * di) // 4

        self.intermediates = [
            self.add_node(Node(f"int-{i}", NodeKind.CORE)) for i in range(n_int)
        ]
        self.aggs = [
            self.add_node(Node(f"agg-{a}", NodeKind.AGG)) for a in range(n_agg)
        ]
        # Complete bipartite aggregation <-> intermediate.
        for agg in self.aggs:
            for inter in self.intermediates:
                self.add_link(agg.name, inter.name, tor_uplink_gbps)

        self.tors = []
        for t in range(n_tor):
            tor = self.add_node(Node(f"tor-{t}", NodeKind.EDGE, group=t))
            self.tors.append(tor)
            # Each ToR uplinks to two distinct aggregation switches.
            a1 = (2 * t) % n_agg
            a2 = (2 * t + 1) % n_agg
            if a1 == a2:  # n_agg == 1: single uplink only
                self.add_link(tor.name, self.aggs[a1].name, tor_uplink_gbps)
            else:
                self.add_link(tor.name, self.aggs[a1].name, tor_uplink_gbps)
                self.add_link(tor.name, self.aggs[a2].name, tor_uplink_gbps)
            for s in range(servers_per_tor):
                host = self.add_node(Node(f"host-{t}-{s}", NodeKind.HOST, group=t))
                self.add_link(tor.name, host.name, server_gbps)

        self.validate()

    @property
    def expected_tors(self) -> int:
        return (self.da * self.di) // 4

    @property
    def expected_hosts(self) -> int:
        return self.expected_tors * self.servers_per_tor
