"""PortLand (Mysore et al. — SIGCOMM 2009).

PortLand keeps the fat-tree wiring but layers a location-encoding pseudo MAC
(PMAC) scheme ``pod:position:port:vmid`` and a central *fabric manager* that
resolves IP -> PMAC (proxy ARP), giving a flat, migration-friendly layer-2
address space.  For this reproduction the interesting parts are the PMAC
addressing and the fabric-manager resolution path, since they are what make
"logical pods decoupled from physical location" possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.topology.fattree import FatTree


@dataclass(frozen=True)
class PMAC:
    """A PortLand pseudo-MAC: (pod, position, port, vmid)."""

    pod: int
    position: int
    port: int
    vmid: int

    def __str__(self) -> str:
        return f"{self.pod:02x}:{self.position:02x}:{self.port:04x}:{self.vmid:04x}"


class FabricManager:
    """PortLand's logically-central IP->PMAC resolution service."""

    def __init__(self):
        self._table: dict[str, PMAC] = {}
        self.resolutions = 0
        self.misses = 0

    def register(self, ip: str, pmac: PMAC) -> None:
        self._table[ip] = pmac

    def unregister(self, ip: str) -> None:
        self._table.pop(ip, None)

    def resolve(self, ip: str) -> Optional[PMAC]:
        """Proxy-ARP resolution; returns None on miss (flood suppressed)."""
        self.resolutions += 1
        pmac = self._table.get(ip)
        if pmac is None:
            self.misses += 1
        return pmac

    def migrate(self, ip: str, new_pmac: PMAC) -> None:
        """Update a VM's location after migration (invalidation handled
        by gratuitous ARP in real PortLand; here the table is authoritative)."""
        if ip not in self._table:
            raise KeyError(f"unknown ip {ip}")
        self._table[ip] = new_pmac

    def __len__(self) -> int:
        return len(self._table)


class PortLand(FatTree):
    """A fat-tree with PMAC addressing and a fabric manager."""

    def __init__(self, k: int = 4, link_gbps: float = 1.0):
        super().__init__(k=k, link_gbps=link_gbps)
        self.name = f"portland-k{k}"
        self.fabric_manager = FabricManager()
        # host name -> base PMAC (vmid 0); VMs on the host use vmid >= 1.
        self._host_pmac: dict[str, PMAC] = {}
        for pod in range(k):
            for e in range(k // 2):
                for h in range(k // 2):
                    name = f"host-{pod}-{e}-{h}"
                    self._host_pmac[name] = PMAC(pod=pod, position=e, port=h, vmid=0)

    def host_pmac(self, host_name: str, vmid: int = 0) -> PMAC:
        """PMAC of a host (or of VM *vmid* on that host)."""
        base = self._host_pmac[host_name]
        return PMAC(base.pod, base.position, base.port, vmid)

    def register_vm(self, ip: str, host_name: str, vmid: int) -> PMAC:
        """Place a VM with address *ip* on *host_name*; returns its PMAC."""
        pmac = self.host_pmac(host_name, vmid)
        self.fabric_manager.register(ip, pmac)
        return pmac

    def locate(self, ip: str) -> Optional[str]:
        """Reverse lookup: host name currently holding *ip*, if any."""
        pmac = self.fabric_manager.resolve(ip)
        if pmac is None:
            return None
        return f"host-{pmac.pod}-{pmac.position}-{pmac.port}"
