"""k-ary fat-tree (Al-Fares, Loukissas, Vahdat — SIGCOMM 2008).

A k-ary fat-tree has k pods.  Each pod holds k/2 edge switches and k/2
aggregation switches; each edge switch attaches k/2 hosts.  (k/2)^2 core
switches connect the pods.  With uniform link capacity the network has full
bisection bandwidth: any host can talk to any other host at its full NIC
rate, which is the property the paper's LB-switch placement relies on.
"""

from __future__ import annotations

from repro.topology.base import Node, NodeKind, Topology


class FatTree(Topology):
    """Build a k-ary fat-tree.

    Parameters
    ----------
    k:
        Switch port count; must be even and >= 2.  Yields ``k**3 / 4`` hosts.
    link_gbps:
        Uniform link capacity (default 1 Gbps, as in the original paper's
        commodity-switch setting).
    """

    def __init__(self, k: int = 4, link_gbps: float = 1.0):
        if k < 2 or k % 2 != 0:
            raise ValueError(f"fat-tree arity k must be even and >= 2, got {k}")
        super().__init__(name=f"fattree-k{k}")
        self.k = k
        self.link_gbps = link_gbps
        half = k // 2

        # Core switches, indexed (i, j) in a half x half grid.
        cores = [
            self.add_node(Node(f"core-{i}-{j}", NodeKind.CORE))
            for i in range(half)
            for j in range(half)
        ]

        self.pod_edge: list[list[Node]] = []
        self.pod_agg: list[list[Node]] = []
        for pod in range(k):
            aggs = [
                self.add_node(Node(f"agg-{pod}-{a}", NodeKind.AGG, group=pod))
                for a in range(half)
            ]
            edges = [
                self.add_node(Node(f"edge-{pod}-{e}", NodeKind.EDGE, group=pod))
                for e in range(half)
            ]
            self.pod_agg.append(aggs)
            self.pod_edge.append(edges)
            # Full bipartite agg <-> edge inside the pod.
            for agg in aggs:
                for edge in edges:
                    self.add_link(agg.name, edge.name, link_gbps)
            # Aggregation switch `a` connects to core row `a`.
            for a, agg in enumerate(aggs):
                for j in range(half):
                    self.add_link(agg.name, f"core-{a}-{j}", link_gbps)
            # Hosts.
            for e, edge in enumerate(edges):
                for h in range(half):
                    host = self.add_node(
                        Node(f"host-{pod}-{e}-{h}", NodeKind.HOST, group=pod)
                    )
                    self.add_link(edge.name, host.name, link_gbps)

        self.cores = cores
        self.validate()

    @property
    def expected_hosts(self) -> int:
        return self.k**3 // 4

    def host_pod(self, host_name: str) -> int:
        """Fat-tree pod index of a host (its construction group)."""
        return self.node(host_name).group
