"""Legacy oversubscribed 3-tier tree — the baseline modern topologies replace.

Traditional data centers used a core/aggregation/edge tree with heavy
oversubscription (1:5 to 1:240 per Greenberg et al.).  Host-pair bandwidth
depends on location, which is why traditional LB switches had to sit next to
their servers and why the paper's border placement needs a modern fabric.
"""

from __future__ import annotations

from repro.topology.base import Node, NodeKind, Topology


class ThreeTierTree(Topology):
    """Build a classic 3-tier tree.

    Parameters
    ----------
    aggs:
        Number of aggregation switches (each attached to the single core).
    edges_per_agg:
        Edge (ToR) switches per aggregation switch.
    hosts_per_edge:
        Hosts per edge switch.
    host_gbps:
        Host attachment rate.
    oversubscription:
        Uplink oversubscription factor at each tier (>= 1).  An edge switch
        carrying ``hosts_per_edge`` hosts gets an uplink of
        ``hosts_per_edge * host_gbps / oversubscription``; likewise for the
        aggregation uplinks.
    """

    def __init__(
        self,
        aggs: int = 2,
        edges_per_agg: int = 4,
        hosts_per_edge: int = 8,
        host_gbps: float = 1.0,
        oversubscription: float = 4.0,
    ):
        if oversubscription < 1:
            raise ValueError("oversubscription must be >= 1")
        if min(aggs, edges_per_agg, hosts_per_edge) < 1:
            raise ValueError("all tier sizes must be >= 1")
        super().__init__(name=f"tree-{aggs}x{edges_per_agg}x{hosts_per_edge}")
        self.oversubscription = oversubscription
        self.host_gbps = host_gbps

        core = self.add_node(Node("core-0", NodeKind.CORE))
        edge_uplink = hosts_per_edge * host_gbps / oversubscription
        agg_uplink = edges_per_agg * edge_uplink / oversubscription

        for a in range(aggs):
            agg = self.add_node(Node(f"agg-{a}", NodeKind.AGG, group=a))
            self.add_link(core.name, agg.name, agg_uplink)
            for e in range(edges_per_agg):
                edge = self.add_node(Node(f"edge-{a}-{e}", NodeKind.EDGE, group=a))
                self.add_link(agg.name, edge.name, edge_uplink)
                for h in range(hosts_per_edge):
                    host = self.add_node(
                        Node(f"host-{a}-{e}-{h}", NodeKind.HOST, group=a)
                    )
                    self.add_link(edge.name, host.name, host_gbps)

        self.validate()
