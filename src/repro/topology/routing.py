"""Routing over topologies: shortest paths, ECMP enumeration and splitting."""

from __future__ import annotations

from typing import Iterable, Mapping

import networkx as nx


def ecmp_paths(topo, src: str, dst: str, limit: int = 64) -> list[list[str]]:
    """All equal-cost (hop-count) shortest paths from *src* to *dst*.

    ``limit`` caps enumeration on highly redundant fabrics; deterministic
    order (networkx iteration order is insertion order).
    """
    if src == dst:
        return [[src]]
    paths = []
    for path in nx.all_shortest_paths(topo.graph, src, dst):
        paths.append(path)
        if len(paths) >= limit:
            break
    return paths


def shortest_path_links(topo, src: str, dst: str) -> list[tuple[str, str]]:
    """Link keys along one deterministic shortest path."""
    path = nx.shortest_path(topo.graph, src, dst)
    return [tuple(sorted((path[i], path[i + 1]))) for i in range(len(path) - 1)]


def ecmp_link_loads(
    topo, demands: Mapping[tuple[str, str], float], limit: int = 64
) -> dict[tuple[str, str], float]:
    """Per-link offered load when each demand is split evenly over its ECMP
    paths (hash-based splitting in expectation).

    Parameters
    ----------
    demands:
        ``(src, dst) -> rate`` in Gbps.

    Returns
    -------
    ``(node_a, node_b) -> load`` with canonically sorted keys.
    """
    loads: dict[tuple[str, str], float] = {}
    for (src, dst), rate in demands.items():
        if rate <= 0 or src == dst:
            continue
        paths = ecmp_paths(topo, src, dst, limit=limit)
        share = rate / len(paths)
        for path in paths:
            for i in range(len(path) - 1):
                key = tuple(sorted((path[i], path[i + 1])))
                loads[key] = loads.get(key, 0.0) + share
    return loads


def max_link_utilization(
    topo, loads: Mapping[tuple[str, str], float]
) -> float:
    """Maximum load/capacity over all links carrying load."""
    worst = 0.0
    for (a, b), load in loads.items():
        cap = topo.link_capacity(a, b)
        worst = max(worst, load / cap)
    return worst
