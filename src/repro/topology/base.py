"""Common topology abstractions: nodes, links, and the Topology container."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import networkx as nx


class NodeKind(enum.Enum):
    """Role of a node in the data-center graph."""

    HOST = "host"
    EDGE = "edge"  # edge / top-of-rack switch
    AGG = "agg"  # aggregation switch
    CORE = "core"  # core / intermediate switch
    BORDER = "border"  # border router (access connection layer)
    LB = "lb"  # load-balancing switch


@dataclass(frozen=True)
class Node:
    """A switch, router or host.  Identified by a unique string name."""

    name: str
    kind: NodeKind
    #: Topology-specific grouping (e.g. fat-tree pod index); -1 if n/a.
    group: int = -1

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.name


@dataclass(frozen=True)
class Link:
    """An undirected link with symmetric capacity in Gbps."""

    a: str
    b: str
    capacity_gbps: float

    def key(self) -> tuple[str, str]:
        """Canonical (sorted) endpoint pair."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


class Topology:
    """A named collection of nodes and capacitated links.

    Thin wrapper over a networkx graph that adds typed nodes, capacity
    bookkeeping and the queries the rest of the system needs.  Concrete
    topologies (fat-tree, VL2, ...) populate it in their constructors.
    """

    def __init__(self, name: str):
        self.name = name
        self.graph = nx.Graph()
        self._nodes: dict[str, Node] = {}

    # -- construction ------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node {node.name}")
        self._nodes[node.name] = node
        self.graph.add_node(node.name, kind=node.kind, group=node.group)
        return node

    def add_link(self, a: str, b: str, capacity_gbps: float) -> Link:
        if a not in self._nodes or b not in self._nodes:
            raise KeyError(f"link endpoints must exist: {a}, {b}")
        if capacity_gbps <= 0:
            raise ValueError("link capacity must be positive")
        if self.graph.has_edge(a, b):
            raise ValueError(f"duplicate link {a}-{b}")
        link = Link(a, b, capacity_gbps)
        self.graph.add_edge(a, b, capacity=capacity_gbps, link=link)
        return link

    # -- queries -------------------------------------------------------------
    def node(self, name: str) -> Node:
        return self._nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self, kind: Optional[NodeKind] = None) -> list[Node]:
        if kind is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.kind == kind]

    @property
    def hosts(self) -> list[Node]:
        return self.nodes(NodeKind.HOST)

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    def links(self) -> Iterator[Link]:
        for _, _, data in self.graph.edges(data=True):
            yield data["link"]

    def link_capacity(self, a: str, b: str) -> float:
        return self.graph.edges[a, b]["capacity"]

    def degree(self, name: str) -> int:
        return self.graph.degree[name]

    def neighbors(self, name: str) -> list[str]:
        return list(self.graph.neighbors(name))

    def host_uplink_gbps(self, host: str) -> float:
        """Total capacity of a host's attachment links."""
        return sum(
            self.graph.edges[host, n]["capacity"] for n in self.graph.neighbors(host)
        )

    def validate(self) -> None:
        """Structural sanity: connected, hosts are leaves."""
        if self.graph.number_of_nodes() == 0:
            raise ValueError("empty topology")
        if not nx.is_connected(self.graph):
            raise ValueError(f"{self.name}: topology is not connected")
        for host in self.hosts:
            if self.graph.degree[host.name] < 1:
                raise ValueError(f"host {host.name} is unattached")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} {self.name!r}: "
            f"{self.graph.number_of_nodes()} nodes, "
            f"{self.graph.number_of_edges()} links, {self.num_hosts} hosts>"
        )
