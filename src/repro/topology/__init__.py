"""Data-center network topologies.

The paper's architecture relies on "recent advances in data center
topologies" — fat-tree (Al-Fares et al., SIGCOMM'08), VL2 (Greenberg et
al., SIGCOMM'09) and PortLand (Mysore et al., SIGCOMM'09) — which guarantee
bandwidth between any host pair and give a flat address space.  That is
what lets the LB switches sit at the access network and reach any server.
We implement all three, plus the legacy oversubscribed 3-tier tree they
replace, and the analysis used to compare them (bisection bandwidth,
oversubscription, host-pair bandwidth guarantees).
"""

from repro.topology.base import Link, Node, NodeKind, Topology
from repro.topology.fattree import FatTree
from repro.topology.vl2 import VL2
from repro.topology.portland import PortLand
from repro.topology.tree import ThreeTierTree
from repro.topology.routing import ecmp_paths, shortest_path_links
from repro.topology.analysis import (
    bisection_bandwidth,
    host_pair_guarantee,
    oversubscription_ratio,
)

__all__ = [
    "Node",
    "NodeKind",
    "Link",
    "Topology",
    "FatTree",
    "VL2",
    "PortLand",
    "ThreeTierTree",
    "ecmp_paths",
    "shortest_path_links",
    "bisection_bandwidth",
    "oversubscription_ratio",
    "host_pair_guarantee",
]
