#!/usr/bin/env python
"""Quickstart: build a small mega data center and watch it run.

Builds the paper's Figure-1 architecture at laptop scale — 4 access links,
6 LB switches, 3 pods of 12 servers, 30 Zipf-popular applications — runs
half an hour of simulated time and prints what the platform did.

Run:  python examples/quickstart.py
"""

from repro.core import MegaDataCenter, PlatformConfig
from repro.sim import RngHub
from repro.workload import WorkloadBuilder


def main() -> None:
    # 1. A workload: 30 applications, Zipf-popular, half of them diurnal.
    apps = WorkloadBuilder(
        n_apps=30,
        total_gbps=15.0,
        zipf_s=0.8,
        diurnal_fraction=0.5,
        rng_hub=RngHub(seed=42),
    ).build()

    # 2. The platform: pods, LB switches, access links, DNS, managers.
    dc = MegaDataCenter(
        apps,
        config=PlatformConfig(epoch_s=60.0),
        n_pods=3,
        servers_per_pod=12,
        n_switches=6,
    )

    # 3. Run 30 simulated minutes.
    dc.run(30 * 60.0)

    # 4. Inspect.
    print(f"epochs run:          {dc.epochs}")
    print(f"satisfied demand:    {dc.satisfied.current:.1%}")
    print(f"total demand now:    {dc.total_demand_gbps():.1f} Gbps")
    print(f"invariants hold:     {dc.invariants_ok()}")
    print()
    print("access links:")
    for name, util in sorted(dc.link_utilizations().items()):
        print(f"  {name}: {util:6.1%}")
    print("LB switches:")
    for name, util in sorted(dc.switch_utilizations().items()):
        print(f"  {name}: {util:6.1%}")
    print("pods:")
    for name, util in sorted(dc.pod_utilizations().items()):
        print(f"  {name}: {util:6.1%}  "
              f"({dc.pod_managers[name].pod.n_vms} VMs on "
              f"{dc.pod_managers[name].pod.n_servers} servers)")
    log = dc.action_log()
    print()
    print(f"global-manager actions: {len(log)}")
    for knob in ("K1", "K2", "K3", "K4", "K5", "K6"):
        n = log.count(knob)
        if n:
            print(f"  {knob}: {n}")


if __name__ == "__main__":
    main()
