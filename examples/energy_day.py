#!/usr/bin/env python
"""One diurnal day, two energy policies (the Section VI extension).

Runs the same platform through a simulated day twice — spreading load for
headroom vs consolidating and parking empty servers — and prints the
hour-by-hour fleet power alongside the demand curve.

Run:  python examples/energy_day.py
"""

from repro.core import MegaDataCenter, PlatformConfig
from repro.core.energy import EnergyAccountant, PowerModel
from repro.placement import GreedyController
from repro.sim import RngHub
from repro.workload import WorkloadBuilder


def run_day(consolidate: bool):
    apps = WorkloadBuilder(
        n_apps=20, total_gbps=12.0, diurnal_fraction=1.0, rng_hub=RngHub(3)
    ).build()
    dc = MegaDataCenter(
        apps,
        config=PlatformConfig(epoch_s=600.0),
        n_pods=3,
        servers_per_pod=10,
        n_switches=4,
        pod_controller_factory=lambda: GreedyController(
            stop_idle=consolidate, packing=consolidate
        ),
    )
    acct = EnergyAccountant(dc.env, PowerModel())
    servers = lambda: [s for m in dc.pod_managers.values() for s in m.pod.servers]
    acct.sample(servers())
    hourly_power = []
    for hour in range(24):
        dc.run(3600.0)
        if consolidate:
            acct.park_all_empty(servers())
        power = acct.sample(servers())
        hourly_power.append((power, dc.total_demand_gbps()))
    return hourly_power, acct, dc


def main() -> None:
    spread, acct_s, _ = run_day(consolidate=False)
    packed, acct_p, dc = run_day(consolidate=True)

    print(f"{'hour':>4} | {'demand':>7} | {'spread W':>9} | {'packed W':>9}")
    print("-" * 40)
    for h, ((pw_s, d), (pw_p, _)) in enumerate(zip(spread, packed)):
        bar = "#" * int(d)
        print(f"{h:>4} | {d:>6.1f}G | {pw_s:>8.0f}W | {pw_p:>8.0f}W  {bar}")

    saving = 1 - acct_p.energy_kwh / acct_s.energy_kwh
    print(
        f"\nday total: spread {acct_s.energy_kwh:.1f} kWh, "
        f"consolidated {acct_p.energy_kwh:.1f} kWh  ({saving:.0%} saved, "
        f"{acct_p.parked_server_hours:.0f} parked server-hours)"
    )
    print(f"demand satisfied throughout: {dc.satisfied.time_average():.1%}")


if __name__ == "__main__":
    main()
