#!/usr/bin/env python
"""Flash crowd: watch the control knobs escalate.

One application's demand spikes 10x for twenty minutes.  The global
manager climbs the knob ladder — RIP weights first, then slice
adjustment, then cloning new replicas into cool pods, then (if it comes
to that) pulling servers from donor pods — and we print the action log
as a timeline.

Run:  python examples/flash_crowd.py
"""

from repro.core import MegaDataCenter, PlatformConfig
from repro.sim import RngHub
from repro.workload import WorkloadBuilder


def main() -> None:
    builder = WorkloadBuilder(
        n_apps=16, total_gbps=10.0, diurnal_fraction=0.0, rng_hub=RngHub(7)
    )
    apps = builder.build()
    # Spike the most popular app 10x starting at t=10min.
    apps = builder.with_flash_crowd(
        apps, victims=[0], spike_factor=10.0, start_s=600.0, ramp_s=120.0,
        hold_s=1200.0,
    )
    victim = apps[0].app_id

    dc = MegaDataCenter(
        apps,
        config=PlatformConfig(),
        n_pods=4,
        servers_per_pod=8,
        n_switches=4,
    )
    print(f"flash crowd on {victim}: "
          f"{apps[0].demand.rate(0):.2f} -> {apps[0].demand.rate(900):.2f} Gbps\n")

    checkpoints = [600, 900, 1200, 1800, 2400, 3000]
    last = 0.0
    for t in checkpoints:
        dc.run(t - last)
        last = t
        pods = "  ".join(
            f"{n.split('-')[1]}:{u:.0%}" for n, u in sorted(dc.pod_utilizations().items())
        )
        print(
            f"t={t:5.0f}s  satisfied={dc.satisfied.current:6.1%}  "
            f"victim-instances={sum(1 for i in dc.state.rips.values() if i.app == victim)}  "
            f"pod-utils [{pods}]"
        )

    print("\ncontrol-action timeline:")
    for rec in dc.action_log().records:
        detail = {k: v for k, v in rec.detail.items() if k not in ("weights", "slices")}
        print(f"  t={rec.t:7.1f}s  {rec.knob:>3}  {rec.action:<18} {detail}")
    stats = dc.global_manager.deployment.stats
    print(
        f"\ndeployment turbulence: {stats.deployments} deployments, "
        f"{stats.bytes_copied_gb:.1f} GB copied"
    )


if __name__ == "__main__":
    main()
