#!/usr/bin/env python
"""Session-level load balancing through one LB switch.

Drives the switch data plane at individual-TCP-session granularity:
clients resolve the app through caching resolvers (some of them TTL
violators), sessions arrive as a bursty MMPP, the switch picks RIPs with
smooth weighted round-robin, and the connection table enforces session
affinity.  Mid-run, knob K6 reweights the RIPs and we watch the traffic
mix follow.

Run:  python examples/session_level_lb.py
"""

from collections import Counter

from repro.dns import AuthoritativeDNS, Resolver
from repro.lbswitch import ConnectionTable, LBSwitch, SmoothWeightedRR
from repro.sim import Environment, RngHub
from repro.workload import MMPPArrivals, lognormal_durations


def main() -> None:
    env = Environment()
    hub = RngHub(2024)
    authority = AuthoritativeDNS(env, default_ttl_s=30.0)
    authority.configure("shop.example", {"203.0.113.1": 1.0})

    switch = LBSwitch("lb-0", env)
    switch.add_vip("203.0.113.1", "shop.example")
    for i, weight in enumerate((1.0, 1.0, 2.0)):
        switch.add_rip("203.0.113.1", f"10.0.0.{i}", weight=weight)

    table = ConnectionTable(max_connections=10_000)
    wrr = SmoothWeightedRR(switch.entry("203.0.113.1").rips)
    resolvers = [
        Resolver(env, authority, hub.stream("resolver", i), violator=(i % 10 == 0))
        for i in range(50)
    ]
    arrivals = MMPPArrivals(
        rate_calm=2.0, rate_burst=12.0, mean_calm_s=60.0, mean_burst_s=20.0,
        rng=hub.stream("arrivals"),
    )
    picks_before, picks_after = Counter(), Counter()
    state = {"conn_id": 0, "reweighted": False}

    def client_traffic():
        rng = hub.stream("sessions")
        for gap in arrivals.interarrivals():
            yield env.timeout(gap)
            resolver = resolvers[int(rng.integers(len(resolvers)))]
            vip = resolver.lookup("shop.example")
            rip = wrr.pick()
            cid = state["conn_id"]
            state["conn_id"] += 1
            if table.open(cid, vip, rip, env.now):
                (picks_after if state["reweighted"] else picks_before)[rip] += 1
                env.process(session(cid))

    def session(cid):
        dur = float(lognormal_durations(hub.stream("durations"), mean_s=45.0)[0])
        yield env.timeout(dur)
        assert table.rip_of(cid)  # affinity held for the session's life
        table.close(cid)

    def reweight():
        # K6 halfway through: drain 10.0.0.2, promote 10.0.0.0.
        yield env.timeout(900.0)
        switch.set_rip_weight("203.0.113.1", "10.0.0.2", 0.5)
        switch.set_rip_weight("203.0.113.1", "10.0.0.0", 3.0)
        wrr.update_weights(switch.entry("203.0.113.1").rips)
        state["reweighted"] = True

    env.process(client_traffic())
    env.process(reweight())
    env.run(until=1800.0)

    def show(counter, label):
        total = sum(counter.values())
        print(f"{label} ({total} sessions):")
        for rip in sorted(counter):
            print(f"  {rip}: {counter[rip]:>5}  ({counter[rip] / total:.1%})")

    show(picks_before, "RIP mix before reweighting [1:1:2]")
    print()
    show(picks_after, "RIP mix after K6 reweighting [3:1:0.5]")
    print(f"\nactive sessions at end: {len(table)}; rejected: {table.rejected}")
    print(f"DNS queries served: {authority.queries} "
          f"(cache hits spared the rest)")


if __name__ == "__main__":
    main()
