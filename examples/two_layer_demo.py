#!/usr/bin/env python
"""The policy conflict of Section V-B, and how a second LB layer fixes it.

VIPs tie an access link (via their BGP advertisement) to a pod mix (via
their RIP sets).  When those bindings are crossed — the VIP on the big
link serves the small pod — no DNS weighting can balance links and pods
at once.  The two-layer architecture decouples them with private m-VIPs.

Run:  python examples/two_layer_demo.py
"""

from repro.core.two_layer import TwoLayerFabric, VipBinding
from repro.experiments.e10_two_layer import make_bindings


def main() -> None:
    fabric = TwoLayerFabric(
        link_capacity_gbps={"link-big": 10.0, "link-small": 2.0},
        pod_capacity_gbps={"pod-big": 10.0, "pod-small": 2.0},
    )
    demand = 8.0

    print(f"demand = {demand} Gbps;  links 10+2 Gbps;  pods 10+2 Gbps\n")
    print(f"{'crossing':>8} | {'single-layer worst util':>24} | {'two-layer worst util':>20}")
    print("-" * 60)
    for crossing in (0.0, 0.5, 1.0):
        bindings = make_bindings(crossing)
        single = fabric.solve_single_layer(bindings, demand)
        two = fabric.solve_two_layer({b.vip: b.link for b in bindings}, demand)
        flag = "  <-- overload!" if single.worst > 1 else ""
        print(f"{crossing:>8} | {single.worst:>23.1%} | {two.worst:>19.1%}{flag}")

    over = TwoLayerFabric.switch_overhead(
        n_apps=300_000, external_vips_per_app=3.0, m_vips_per_app=2.0, rips_per_app=20.0
    )
    print(
        f"\nthe price of decoupling at paper scale (300K apps): "
        f"{over['single_layer_switches']} -> {over['two_layer_switches']} LB switches "
        f"(x{over['overhead_ratio']:.2f})"
    )
    print(
        "which is why the paper keeps investigating single-layer policies "
        "before paying for the demand-distribution layer."
    )


if __name__ == "__main__":
    main()
