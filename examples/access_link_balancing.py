#!/usr/bin/env python
"""Access-link traffic engineering with selective VIP exposure (knob K1).

A demand surge overloads the smallest of four access links.  We run the
same scenario twice — once steering with DNS exposure weights (zero route
updates) and once with naive BGP re-advertisement — and print the
utilization timeline of the overloaded link side by side.

Run:  python examples/access_link_balancing.py
"""

import numpy as np

from repro.experiments.e04_selective_exposure import ExposureScenario


def timeline(scenario: ExposureScenario, until: float = 1800.0):
    scenario.run(until)
    series = scenario.util_series["link-a"]
    times = series.times()
    values = series.values()
    # Sample once a minute.
    out = []
    for t in range(0, int(until), 60):
        idx = int(np.searchsorted(times, t, side="right")) - 1
        out.append(values[max(idx, 0)])
    return out


def main() -> None:
    k1 = ExposureScenario("k1")
    naive = ExposureScenario("naive")
    tl_k1 = timeline(k1)
    tl_naive = timeline(naive)

    print("link-a utilization (spike hits at t=600s; capacity 6 Gbps):\n")
    print(f"{'t(s)':>6} | {'K1 exposure':>12} | {'naive BGP':>10}")
    print("-" * 36)
    for i, t in enumerate(range(0, 1800, 60)):
        bar = "  <-- overloaded" if max(tl_k1[i], tl_naive[i]) > 0.85 else ""
        print(f"{t:>6} | {tl_k1[i]:>11.1%} | {tl_naive[i]:>9.1%}{bar}")

    print()
    print(f"K1:    relief after {k1.relief_time:.0f}s, "
          f"{k1.bgp.log.total} route updates")
    print(f"naive: relief after {naive.relief_time:.0f}s, "
          f"{naive.bgp.log.total} route updates "
          f"({naive.bgp.log.advertisements} advertise / "
          f"{naive.bgp.log.paddings} pad / {naive.bgp.log.withdrawals} withdraw)")


if __name__ == "__main__":
    main()
