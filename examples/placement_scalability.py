#!/usr/bin/env python
"""Why pods: centralized placement does not scale; hierarchy does.

Solves identical placement instances of growing size with the three
controllers the paper discusses — Tang et al.'s exact centralized
controller, the hierarchical pods scheme, and an uncoordinated
distributed scheme — and prints time and quality.

Run:  python examples/placement_scalability.py
"""

import numpy as np

from repro.experiments.e02_placement_scalability import make_instance, split_into_pods
from repro.placement import (
    DistributedController,
    GreedyController,
    TangController,
    evaluate_solution,
)


def main() -> None:
    print(f"{'servers':>8} {'apps':>6} | {'tang':>8} {'sat':>6} | "
          f"{'pods(max)':>9} {'sat':>6} | {'dist':>8} {'sat':>6}")
    print("-" * 70)
    for n in (50, 100, 200, 400):
        problem = make_instance(n)

        tang_sol = TangController().solve(problem)
        tang_q = evaluate_solution(problem, tang_sol)

        pods = split_into_pods(problem, pod_size=100)
        greedy = GreedyController()
        times, sat, dem = [], 0.0, 0.0
        for p in pods:
            s = greedy.solve(p)
            times.append(s.wall_time_s)
            sat += s.satisfied().sum()
            dem += p.total_demand

        dist_sol = DistributedController(rng=np.random.default_rng(0)).solve(problem)
        dist_q = evaluate_solution(problem, dist_sol)

        print(
            f"{n:>8} {problem.n_apps:>6} | "
            f"{tang_sol.wall_time_s:>7.2f}s {tang_q.satisfied_fraction:>6.1%} | "
            f"{max(times):>8.3f}s {sat / dem:>6.1%} | "
            f"{dist_sol.wall_time_s:>7.2f}s {dist_q.satisfied_fraction:>6.1%}"
        )
    print(
        "\ntang runtime grows superlinearly (the paper quotes ~30s at 7,000 "
        "servers);\nper-pod time stays flat because each pod is solved "
        "independently (and in a real\ndeployment, in parallel)."
    )


if __name__ == "__main__":
    main()
